"""Level-generic recursive HFC hierarchies (proxies -> clusters -> ... -> top).

The paper builds a bi-level HFC and the three-level prototype
(:mod:`repro.hierarchy.multilevel`) hardcoded one extra level. This module
makes the recursion explicit: **level 0 is the proxies, level 1 the
paper's clusters, and level k+1 re-clusters the level-k centroids with
the same machinery** — Zahn MST or greedy k-center on the centroid cloud,
border pairs by the closest-proxy-pair rule applied across the two
groups' full proxy populations. A depth-``L`` :class:`HierarchyLevels`
therefore is:

* the base :class:`~repro.overlay.hfc.HFCTopology` (levels 0 and 1), and
* ``L - 2`` :class:`~repro.state.columnar.HierarchyLevel` CSR entries,
  the same arrays :class:`~repro.state.columnar.ColumnarOverlayState`
  carries — so the per-level border tables the recursive router relaxes
  over are views of the shared columnar state, not copies.

Exactness contracts (asserted by ``tests/test_hierarchy_levels.py``):

* ``depth=2`` wraps the existing bi-level topology untouched — routing
  matrices and query tables are bit-identical to ``build_hfc``;
* ``depth=3`` reproduces the three-level prototype decision for decision
  (same centroid means, same k-center call, same closest-pair scans), and
  :class:`RecursiveRouter` routes path-identically to the prototype's
  ``ThreeLevelRouter``;
* deeper levels apply the identical rule once more per level.

Routing is the paper's divide-and-conquer applied recursively:
:class:`RecursiveRouter` runs the Section-5 relaxation over the *top*
level (through :class:`_LevelView`, the duck-typed cluster surface),
dissects into per-top-group children, and resolves each child inside the
depth-``L-1`` sub-hierarchy restricted to that group — bottoming out at
the bi-level :class:`~repro.routing.hierarchical.HierarchicalRouter`.
``route_many`` batching is preserved at every level: the conquer step
groups children per sub-hierarchy and feeds each sub-router one batched
call instead of falling back to scalar child solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.mstcluster import Clustering, ClusteringConfig, cluster_nodes
from repro.coords.space import CoordinateSpace
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import ChildRequest, HierarchicalRouter
from repro.routing.path import Hop, ServicePath, merge_consecutive_hops
from repro.services.catalog import ServiceName
from repro.services.placement import aggregate_capability
from repro.services.request import ServiceRequest
from repro.state.columnar import HierarchyLevel
from repro.util.errors import NoFeasiblePathError, TopologyError

GroupId = int


@dataclass
class HierarchyLevels:
    """A depth-``2 + len(levels)`` recursive HFC hierarchy.

    ``levels`` is ordered bottom-up: ``levels[0]`` groups the base
    clusters, ``levels[k]`` groups the groups of ``levels[k - 1]``.
    Border entries are proxy *rows* into :attr:`row_proxies` (the
    overlay's canonical proxy order — the same row coding the columnar
    state uses, so the arrays can be attached there verbatim).
    """

    hfc: HFCTopology
    levels: List[HierarchyLevel]
    row_proxies: List[ProxyId]
    #: the shared columnar state these levels are attached to, when any —
    #: lets the top-level view hand out the state's cached per-level
    #: query tables instead of rebuilding them from scalar calls
    columnar: Optional[Any] = None
    _sub_cache: Dict[GroupId, "HierarchyLevels"] = field(
        default_factory=dict, init=False, repr=False
    )

    # -- shape -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of levels, proxies included (2 = the paper's bi-level)."""
        return 2 + len(self.levels)

    @property
    def top_count(self) -> int:
        """Number of groups at the top level."""
        return self.levels[-1].count if self.levels else self.hfc.cluster_count

    def validate(self) -> None:
        """Structural invariants of the whole stack; raises on violation."""
        below = self.hfc.cluster_count
        dim = self.hfc.space.dimension
        n = len(self.row_proxies)
        for level in self.levels:
            level.validate(below, dim)
            if level.count > 1 and int(level.border_matrix.max()) >= n:
                raise TopologyError("hierarchy border row outside the proxy table")
            below = level.count

    # -- descent -----------------------------------------------------------------

    def group_of(self, proxy: ProxyId) -> GroupId:
        """Top-level group id of *proxy* (walks the parent chain up)."""
        unit = self.hfc.cluster_of(proxy)
        for level in self.levels:
            unit = int(level.parent[unit])
        return unit

    def base_clusters_of(self, group_id: GroupId) -> List[int]:
        """Base cluster ids under top-level *group_id*, in build order.

        Build order is the canonical descent — children ascending at every
        level — which is exactly the order the border-selection scans
        walked, so callers re-deriving borders see identical tie-breaks.
        """
        if not self.levels:
            return [group_id]
        units = [group_id]
        for level in reversed(self.levels):
            units = [u for g in units for u in level.members_of(g)]
        return units

    def proxies_under(self, group_id: GroupId) -> List[ProxyId]:
        """All proxies under top-level *group_id*, in build order."""
        return [
            p
            for cid in self.base_clusters_of(group_id)
            for p in self.hfc.members(cid)
        ]

    def top_members(self, group_id: GroupId) -> List[ProxyId]:
        """All proxies under *group_id*, sorted (the prototype's surface)."""
        return sorted(self.proxies_under(group_id))

    # -- borders -----------------------------------------------------------------

    def top_border(self, from_group: GroupId, to_group: GroupId) -> ProxyId:
        """Top-level border proxy inside *from_group* facing *to_group*."""
        if from_group == to_group:
            raise TopologyError("no border between a group and itself")
        if not self.levels:
            return self.hfc.border(from_group, to_group)
        row = int(self.levels[-1].border_matrix[from_group, to_group])
        return self.row_proxies[row]

    def all_top_borders(self) -> List[ProxyId]:
        """Distinct top-level border proxies, sorted."""
        if not self.levels:
            return self.hfc.all_border_nodes()
        rows = self.levels[-1].border_matrix
        return sorted({self.row_proxies[int(r)] for r in rows.ravel() if r >= 0})

    # -- relay expansion ---------------------------------------------------------

    def expand_hop(self, u: ProxyId, v: ProxyId) -> List[ProxyId]:
        """Relay expansion respecting every level of the hierarchy.

        Same top group: recurse into the sub-hierarchy. Different groups:
        out through the top border pair, each side expanded recursively —
        the prototype's three-level rule, applied at every depth.
        """
        if not self.levels:
            return self.hfc.expand_hop(u, v)
        if u == v:
            return [u]
        gu, gv = self.group_of(u), self.group_of(v)
        if gu == gv:
            return self.sub_hierarchy(gu).expand_hop(u, v)
        head = self.sub_hierarchy(gu).expand_hop(u, self.top_border(gu, gv))
        tail = self.sub_hierarchy(gv).expand_hop(self.top_border(gv, gu), v)
        return head + tail

    # -- restriction -------------------------------------------------------------

    def sub_hierarchy(self, group_id: GroupId) -> "HierarchyLevels":
        """The depth-``L-1`` hierarchy restricted to one top group (cached).

        The base restriction is exactly the prototype's ``sub_hfc``:
        member clusters remapped to local ids ascending, border pairs
        inherited (a border between two units of the same group does not
        depend on anything outside the group). Intermediate levels are
        restricted the same way, keeping their global proxy-row coding.
        """
        if not self.levels:
            raise TopologyError("a bi-level hierarchy has no sub-hierarchies")
        cached = self._sub_cache.get(group_id)
        if cached is not None:
            return cached

        last = len(self.levels) - 1
        # kept[j]: unit ids at tier j (tier 0 = base clusters) under the group
        kept: List[List[int]] = [[] for _ in range(last + 1)]
        kept[last] = sorted(self.levels[last].members_of(group_id))
        for j in range(last - 1, -1, -1):
            kept[j] = sorted(
                u for g in kept[j + 1] for u in self.levels[j].members_of(g)
            )

        cluster_ids = kept[0]
        remap = {cid: local for local, cid in enumerate(cluster_ids)}
        clusters = [list(self.hfc.members(cid)) for cid in cluster_ids]
        labels = {p: remap[self.hfc.cluster_of(p)] for c in clusters for p in c}
        clustering = Clustering(clusters=[sorted(c) for c in clusters], labels=labels)
        borders = {
            (remap[i], remap[j]): proxy
            for (i, j), proxy in self.hfc.borders.items()
            if i in remap and j in remap
        }
        sub_hfc = HFCTopology(
            overlay=self.hfc.overlay,
            clustering=clustering,
            space=self.hfc.space,
            borders=borders,
        )

        sub_levels: List[HierarchyLevel] = []
        for j in range(last):
            level = self.levels[j]
            below, above = kept[j], kept[j + 1]
            remap_below = {u: i for i, u in enumerate(below)}
            remap_above = {g: i for i, g in enumerate(above)}
            parent = np.array(
                [remap_above[int(level.parent[u])] for u in below], dtype=np.int64
            )
            ptr = np.zeros(len(above) + 1, dtype=np.int64)
            members: List[int] = []
            for local_g, g in enumerate(above):
                members.extend(remap_below[u] for u in level.members_of(g))
                ptr[local_g + 1] = len(members)
            border = np.full((len(above), len(above)), -1, dtype=np.int64)
            for a_i, g_i in enumerate(above):
                for a_j, g_j in enumerate(above):
                    if g_i != g_j:
                        border[a_i, a_j] = level.border_matrix[g_i, g_j]
            sub_levels.append(
                HierarchyLevel(
                    parent=parent,
                    ptr=ptr,
                    members=np.array(members, dtype=np.int64),
                    border_matrix=border,
                    centroids=level.centroids[above],
                )
            )

        sub = HierarchyLevels(
            hfc=sub_hfc, levels=sub_levels, row_proxies=self.row_proxies
        )
        self._sub_cache[group_id] = sub
        return sub

    # -- aggregates --------------------------------------------------------------

    def top_capability(self, group_id: GroupId) -> FrozenSet[ServiceName]:
        """Set-union service aggregate of one top-level group."""
        return aggregate_capability(
            self.hfc.overlay.placement, self.top_members(group_id)
        )

    def aggregates(self) -> Dict[Tuple[int, int], FrozenSet[ServiceName]]:
        """Every ``(level, group) -> capability aggregate`` of the stack.

        Level 1 entries are the paper's per-cluster aggregates; level
        ``k >= 2`` entries are aggregate-of-aggregates, unioned upward.
        Keyed for :func:`repro.state.delta.announce_aggregates`.
        """
        placement = self.hfc.overlay.placement
        out: Dict[Tuple[int, int], FrozenSet[ServiceName]] = {}
        below = [
            aggregate_capability(placement, self.hfc.members(cid))
            for cid in range(self.hfc.cluster_count)
        ]
        for cid, services in enumerate(below):
            out[(1, cid)] = services
        for index, level in enumerate(self.levels):
            above = [
                frozenset().union(*(below[u] for u in level.members_of(g)))
                for g in range(level.count)
            ]
            for g, services in enumerate(above):
                out[(index + 2, g)] = services
            below = above
        return out

    # -- state accounting (E5, generalized to any depth) --------------------------

    def _border_scopes(self, cid: int) -> List[set]:
        """Border-proxy sets a member of base cluster *cid* must know.

        One scope per level: level-1 borders among sibling clusters inside
        the own level-2 group, level-k borders inside the own level-(k+1)
        group, and the top level's borders system-wide — the prototype's
        three-level state model, one term per level.
        """
        ancestors: List[int] = []
        unit = cid
        for level in self.levels:
            unit = int(level.parent[unit])
            ancestors.append(unit)

        scopes: List[set] = []
        # base borders, restricted to the own level-2 group when one exists
        if self.levels:
            siblings = set(self.levels[0].members_of(ancestors[0]))
            scopes.append(
                {
                    proxy
                    for (i, j), proxy in self.hfc.borders.items()
                    if i in siblings and j in siblings
                }
            )
        else:
            scopes.append(set(self.hfc.borders.values()))
        for index, level in enumerate(self.levels):
            matrix = level.border_matrix
            if index + 1 < len(self.levels):
                upper = self.levels[index + 1]
                group_siblings = upper.members_of(ancestors[index + 1])
                pairs = [
                    (i, j)
                    for i in group_siblings
                    for j in group_siblings
                    if i != j
                ]
            else:
                k = level.count
                pairs = [(i, j) for i in range(k) for j in range(k) if i != j]
            scopes.append(
                {
                    self.row_proxies[int(matrix[i, j])]
                    for i, j in pairs
                    if matrix[i, j] >= 0
                }
            )
        return scopes

    def coordinates_node_states(self) -> Dict[ProxyId, int]:
        """Per-proxy coordinate entries under the level-generic state model.

        Own-cluster members, plus per level the not-yet-counted border
        proxies of that level's scope. Depth 2 equals the paper's bi-level
        accounting; depth 3 equals the three-level prototype's.
        """
        result: Dict[ProxyId, int] = {}
        for cid in range(self.hfc.cluster_count):
            members = set(self.hfc.members(cid))
            seen = set(members)
            count = len(members)
            for scope in self._border_scopes(cid):
                count += len(scope - seen)
                seen |= scope
            for proxy in members:
                result[proxy] = count
        return result

    def service_node_states(self) -> Dict[ProxyId, int]:
        """Per-proxy service entries under the level-generic state model.

        Own-cluster member placements, plus one aggregate per sibling unit
        at every ancestor level, plus one per top-level group.
        """
        result: Dict[ProxyId, int] = {}
        for cid in range(self.hfc.cluster_count):
            members = self.hfc.members(cid)
            count = len(members)
            unit = cid
            for index, level in enumerate(self.levels):
                parent = int(level.parent[unit])
                if index + 1 < len(self.levels):
                    count += len(level.members_of(parent))
                else:
                    count += len(level.members_of(parent)) + level.count
                unit = parent
            if not self.levels:
                count += self.hfc.cluster_count
            for proxy in members:
                result[proxy] = count
        return result

    def mean_state_bytes(self) -> float:
        """Mean per-proxy state footprint in bytes.

        Each coordinate entry is one float64 k-vector (``8 * k`` bytes),
        each service entry one 8-byte aggregate code — the dimensionless
        model ``benchmarks/bench_multilevel.py`` sweeps across depths.
        """
        coords = self.coordinates_node_states()
        services = self.service_node_states()
        per_coord = 8 * self.hfc.space.dimension
        total = sum(coords[p] * per_coord + services[p] * 8 for p in coords)
        return total / len(coords)

    # -- routing surface ---------------------------------------------------------

    def top_view(self) -> "_LevelView":
        """The duck-typed HFC surface whose clusters are the top groups."""
        return _LevelView(self)


class _LevelView:
    """Duck-typed 'HFC' over a hierarchy's top level.

    Lets :class:`~repro.routing.hierarchical.HierarchicalRouter`'s
    cluster-level machinery run unchanged at the top of the recursion —
    the generalization of the three-level prototype's super view. When
    the hierarchy is attached to a columnar state, the view pre-seeds its
    query-table cache with the state's per-level tables, so the batched
    relaxation reads the shared arrays zero-copy.
    """

    def __init__(self, hierarchy: HierarchyLevels) -> None:
        self._h = hierarchy
        self.space = hierarchy.hfc.space
        self.overlay = hierarchy.hfc.overlay
        state = hierarchy.columnar
        if (
            state is not None
            and hierarchy.levels
            and len(state.levels) >= len(hierarchy.levels)
            and state.levels[len(hierarchy.levels) - 1]
            is hierarchy.levels[-1]
        ):
            self._query_tables_cache = state.level_query_tables(
                len(hierarchy.levels) - 1
            )

    @property
    def cluster_count(self) -> int:
        return self._h.top_count

    def cluster_of(self, proxy: ProxyId) -> GroupId:
        return self._h.group_of(proxy)

    def members(self, group_id: GroupId) -> List[ProxyId]:
        return self._h.top_members(group_id)

    def border(self, i: GroupId, j: GroupId) -> ProxyId:
        return self._h.top_border(i, j)

    def external_estimate(self, i: GroupId, j: GroupId) -> float:
        return self.space.distance(
            self._h.top_border(i, j), self._h.top_border(j, i)
        )

    def expand_hop(self, u: ProxyId, v: ProxyId) -> List[ProxyId]:
        return self._h.expand_hop(u, v)


class RecursiveRouter(HierarchicalRouter):
    """Divide-and-conquer routing over a recursive hierarchy of any depth.

    The top level runs the paper's Section-5 relaxation verbatim (through
    :class:`_LevelView`); each top-group child is resolved by the router
    of the depth-``L-1`` sub-hierarchy restricted to that group — another
    :class:`RecursiveRouter` until the recursion bottoms out at the
    bi-level :class:`HierarchicalRouter`. Relay-only children cross the
    group along its internal border structure. At depth 3 this routes
    path-identically to the prototype's ``ThreeLevelRouter``.
    """

    def __init__(self, hierarchy: HierarchyLevels, **kwargs) -> None:
        if hierarchy.depth < 3:
            raise TopologyError(
                "RecursiveRouter needs depth >= 3; use HierarchicalRouter "
                "directly on the bi-level topology"
            )
        self.hierarchy = hierarchy
        capabilities = {
            gid: hierarchy.top_capability(gid)
            for gid in range(hierarchy.top_count)
        }
        kwargs.setdefault("cluster_capabilities", capabilities)
        super().__init__(hierarchy.top_view(), **kwargs)  # type: ignore[arg-type]
        self._sub_routers: Dict[GroupId, HierarchicalRouter] = {}

    def _sub_router(self, group_id: GroupId) -> HierarchicalRouter:
        cached = self._sub_routers.get(group_id)
        if cached is None:
            sub = self.hierarchy.sub_hierarchy(group_id)
            if sub.levels:
                cached = RecursiveRouter(
                    sub, method=self.method, use_numpy=self.use_numpy
                )
            else:
                cached = HierarchicalRouter(
                    sub.hfc, method=self.method, use_numpy=self.use_numpy
                )
            self._sub_routers[group_id] = cached
        return cached

    def _relay_path(self, child: ChildRequest) -> ServicePath:
        hops = self.hierarchy.sub_hierarchy(child.cluster).expand_hop(
            child.source_proxy, child.destination_proxy
        )
        merged = merge_consecutive_hops([Hop(proxy=p) for p in hops])
        return ServicePath(hops=tuple(merged))

    def _sub_request(self, request: ServiceRequest, child: ChildRequest):
        from repro.services.graph import ServiceGraph

        sg = request.service_graph
        sub_sg = ServiceGraph(
            services={slot: sg.service_of(slot) for slot in child.slots},
            edges=frozenset(zip(child.slots, child.slots[1:])),
        )
        return ServiceRequest(
            source_proxy=child.source_proxy,
            service_graph=sub_sg,
            destination_proxy=child.destination_proxy,
        )

    def solve_child(
        self, request: ServiceRequest, child: ChildRequest
    ) -> ServicePath:
        if not child.slots:
            return self._relay_path(child)
        return self._sub_router(child.cluster).route(
            self._sub_request(request, child)
        )

    def _conquer_custom(self, requests, children_of, outcomes_of) -> None:
        """Batched conquer: one ``route_many`` per touched sub-hierarchy.

        Children are grouped by top-level group across the whole batch and
        solved through each group's sub-router in one call, recursively —
        batching is preserved at every level of the hierarchy. Outcomes
        are then reassembled per request with the scalar semantics (stop
        recording at the first infeasible child), so results are
        bit-identical to the base per-child loop.
        """
        solved: Dict[Tuple[int, int], Tuple[str, object]] = {}
        buckets: Dict[GroupId, List[Tuple[int, int, ServiceRequest]]] = {}
        for idx, request in enumerate(requests):
            children = children_of[idx]
            if children is None:
                continue
            for pos, child in enumerate(children):
                if not child.slots:
                    try:
                        solved[(idx, pos)] = ("ok", self._relay_path(child))
                    except NoFeasiblePathError as err:
                        solved[(idx, pos)] = ("err", err)
                else:
                    buckets.setdefault(child.cluster, []).append(
                        (idx, pos, self._sub_request(request, child))
                    )
        for group_id, entries in buckets.items():
            result = self._sub_router(group_id).route_many_detailed(
                [sub_request for _, _, sub_request in entries]
            )
            for (idx, pos, _), path, error in zip(
                entries, result.paths, result.errors
            ):
                solved[(idx, pos)] = (
                    ("ok", path) if error is None else ("err", error)
                )
        for idx in range(len(requests)):
            children = children_of[idx]
            if children is None:
                continue
            outcomes = []
            for pos in range(len(children)):
                kind, value = solved[(idx, pos)]
                outcomes.append((kind, value))
                if kind == "err":
                    break
            outcomes_of[idx] = outcomes


# -- construction ------------------------------------------------------------------


def base_centroids(hfc: HFCTopology) -> np.ndarray:
    """Per-cluster centroids: the mean of each cluster's member coordinates.

    The exact expression the three-level prototype used, so re-clustering
    these at depth 3 reproduces its grouping bit for bit.
    """
    return np.array(
        [
            hfc.space.array(hfc.members(cid)).mean(axis=0)
            for cid in range(hfc.cluster_count)
        ],
        dtype=float,
    )


def _group_units(
    centroids: np.ndarray,
    *,
    method: str,
    group_count: Optional[int],
    seed,
    config: Optional[ClusteringConfig],
) -> List[List[int]]:
    """Cluster one level's unit centroids into the next level's groups.

    ``kcenter`` (default) targets ``round(sqrt(count))`` balanced groups;
    ``mst`` applies the same Zahn machinery used at level 1. Returns the
    per-group unit-id lists, ids ascending — the prototype's convention.
    """
    space = CoordinateSpace(
        {unit: tuple(row) for unit, row in enumerate(centroids.tolist())}
    )
    if method == "mst":
        clustering = cluster_nodes(
            space, config=config or ClusteringConfig(min_cluster_size=1)
        )
    elif method == "kcenter":
        from repro.cluster.kcenter import kcenter_cluster

        if group_count is None:
            group_count = max(1, int(round(centroids.shape[0] ** 0.5)))
        clustering = kcenter_cluster(space, group_count, seed=seed)
    else:
        raise TopologyError(f"method must be 'kcenter' or 'mst', got {method!r}")
    return [sorted(members) for members in clustering.clusters]


def build_level(
    groups: List[List[int]],
    unit_proxies: List[List[ProxyId]],
    unit_centroids: np.ndarray,
    space: CoordinateSpace,
    row_of: Dict[ProxyId, int],
) -> HierarchyLevel:
    """One :class:`HierarchyLevel` from a fixed grouping of units.

    Centroids are the mean of each group's unit centroids; borders are the
    closest proxy pair across the two groups' full proxy populations (the
    paper's Section-3.3 rule, one level up), scanned in ascending group
    order — identical tie-breaks to the three-level prototype. Shared by
    the cold build and the churn layer's spine patching, which is what
    makes a patched hierarchy bit-equal to a rebuild over the same
    grouping.
    """
    count = len(groups)
    count_below = int(unit_centroids.shape[0])
    parent = np.full(count_below, -1, dtype=np.int64)
    ptr = np.zeros(count + 1, dtype=np.int64)
    members = np.empty(count_below, dtype=np.int64)
    at = 0
    for gid, units in enumerate(groups):
        for u in units:
            parent[u] = gid
            members[at] = u
            at += 1
        ptr[gid + 1] = at
    centroids = np.array(
        [unit_centroids[units].mean(axis=0) for units in groups], dtype=float
    )
    group_proxies = [
        [p for u in units for p in unit_proxies[u]] for units in groups
    ]
    border_matrix = np.full((count, count), -1, dtype=np.int64)
    for i in range(count):
        for j in range(i + 1, count):
            a, b, _ = space.closest_pair(group_proxies[i], group_proxies[j])
            border_matrix[i, j] = row_of[a]
            border_matrix[j, i] = row_of[b]
    return HierarchyLevel(
        parent=parent,
        ptr=ptr,
        members=members,
        border_matrix=border_matrix,
        centroids=centroids,
    )


def build_levels(
    hfc: HFCTopology,
    depth: int,
    *,
    method: str = "kcenter",
    group_counts: Optional[Sequence[Optional[int]]] = None,
    seed=0,
    config: Optional[ClusteringConfig] = None,
    assignments: Optional[Sequence[Sequence[Sequence[int]]]] = None,
) -> HierarchyLevels:
    """Build a depth-``depth`` recursive hierarchy over *hfc*.

    ``depth=2`` wraps the bi-level topology untouched. Every added level
    re-clusters the level below's centroids (*method*, per-level size
    overrides via *group_counts*) and selects borders by the closest-pair
    rule over the groups' full proxy populations. *assignments*, when
    given, fixes the per-level groupings instead of re-clustering — the
    churn layer's cold-rebuild reference, which recomputes every centroid
    and border from scratch under a known-good assignment.
    """
    if depth < 2:
        raise TopologyError(f"hierarchy depth must be >= 2, got {depth}")
    row_proxies = list(hfc.overlay.proxies)
    hierarchy = HierarchyLevels(hfc=hfc, levels=[], row_proxies=row_proxies)
    if depth == 2:
        return hierarchy
    if assignments is not None and len(assignments) != depth - 2:
        raise TopologyError(
            f"assignments must fix {depth - 2} levels, got {len(assignments)}"
        )
    row_of = {p: r for r, p in enumerate(row_proxies)}
    unit_proxies: List[List[ProxyId]] = [
        list(hfc.members(cid)) for cid in range(hfc.cluster_count)
    ]
    unit_centroids = base_centroids(hfc)
    for index in range(depth - 2):
        if assignments is not None:
            groups = [sorted(units) for units in assignments[index]]
        else:
            groups = _group_units(
                unit_centroids,
                method=method,
                group_count=(
                    group_counts[index]
                    if group_counts is not None and index < len(group_counts)
                    else None
                ),
                seed=seed,
                config=config,
            )
        level = build_level(
            groups, unit_proxies, unit_centroids, hfc.space, row_of
        )
        hierarchy.levels.append(level)
        unit_proxies = [
            [p for u in units for p in unit_proxies[u]] for units in groups
        ]
        unit_centroids = level.centroids
    hierarchy.validate()
    return hierarchy


def levels_from_columnar(state: Any, hfc: HFCTopology) -> HierarchyLevels:
    """Materialise a hierarchy from a columnar state's attached level stack.

    The warm-start path: snapshot restores carry the per-level CSR arrays,
    so no re-clustering or border re-selection runs — the returned
    hierarchy shares the state's arrays (and its cached per-level query
    tables) directly.
    """
    if not state.levels:
        raise TopologyError("columnar state carries no hierarchy levels")
    return HierarchyLevels(
        hfc=hfc,
        levels=list(state.levels),
        row_proxies=[int(p) for p in state.proxies],
        columnar=state,
    )
