"""Three-level HFC hierarchies — scaling past the paper's bi-level design.

The paper builds a bi-level HFC topology and notes that flat organisations
stop scaling; the same argument applies recursively once the *cluster
count* grows. This module adds one more level:

* level-1 clusters (the paper's) are themselves clustered — by their
  coordinate centroids, with the same Zahn machinery — into
  **super-clusters**;
* within a super-cluster, clusters stay fully connected through their
  existing border pairs; super-clusters connect through **super-border
  pairs** (closest proxy pair across the two super-clusters — the paper's
  rule, applied one level up);
* per-proxy state shrinks again: coordinates of own-cluster members +
  borders *within the own super-cluster* + super-borders system-wide;
  service capability of own-cluster members + cluster aggregates within
  the own super-cluster + super-cluster aggregates.

Routing is the paper's divide-and-conquer applied twice:
:class:`ThreeLevelRouter` runs the super-cluster-level service DAG (the
exact Section-5 relaxation, one level up), dissects into per-super-cluster
children, and resolves each child with a *bi-level* hierarchical router
restricted to that super-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cluster.mstcluster import Clustering, ClusteringConfig
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.path import Hop, ServicePath, merge_consecutive_hops
from repro.services.catalog import ServiceName
from repro.services.placement import aggregate_capability
from repro.util.errors import TopologyError

ClusterId = int
SuperId = int


@dataclass
class MultiLevelHFC:
    """A three-level HFC: proxies -> clusters -> super-clusters."""

    hfc: HFCTopology
    #: level-1 cluster id -> super-cluster id
    super_of_cluster: Dict[ClusterId, SuperId]
    #: super-cluster id -> its level-1 cluster ids
    cluster_members: Dict[SuperId, List[ClusterId]]
    #: (super_i, super_j) -> super-border proxy inside super_i
    super_borders: Dict[Tuple[SuperId, SuperId], ProxyId]
    _sub_cache: Dict[SuperId, HFCTopology] = field(
        default_factory=dict, init=False, repr=False
    )

    @property
    def super_count(self) -> int:
        """Number of super-clusters."""
        return len(self.cluster_members)

    def super_of(self, proxy: ProxyId) -> SuperId:
        """Super-cluster id of *proxy*."""
        return self.super_of_cluster[self.hfc.cluster_of(proxy)]

    def members(self, super_id: SuperId) -> List[ProxyId]:
        """All proxies in super-cluster *super_id*."""
        result: List[ProxyId] = []
        for cid in self.cluster_members[super_id]:
            result.extend(self.hfc.members(cid))
        return sorted(result)

    def super_border(self, from_super: SuperId, to_super: SuperId) -> ProxyId:
        """Super-border proxy inside *from_super* facing *to_super*."""
        if from_super == to_super:
            raise TopologyError("no border between a super-cluster and itself")
        return self.super_borders[(from_super, to_super)]

    def all_super_borders(self) -> List[ProxyId]:
        """Distinct super-border proxies, sorted."""
        return sorted(set(self.super_borders.values()))

    def sub_hfc(self, super_id: SuperId) -> HFCTopology:
        """The bi-level HFC restricted to *super_id*'s clusters (cached)."""
        cached = self._sub_cache.get(super_id)
        if cached is not None:
            return cached
        cluster_ids = self.cluster_members[super_id]
        remap = {cid: local for local, cid in enumerate(cluster_ids)}
        clusters = [list(self.hfc.members(cid)) for cid in cluster_ids]
        labels = {p: remap[self.hfc.cluster_of(p)] for c in clusters for p in c}
        clustering = Clustering(clusters=[sorted(c) for c in clusters], labels=labels)
        borders = {
            (remap[i], remap[j]): proxy
            for (i, j), proxy in self.hfc.borders.items()
            if i in remap and j in remap
        }
        sub = HFCTopology(
            overlay=self.hfc.overlay,
            clustering=clustering,
            space=self.hfc.space,
            borders=borders,
        )
        self._sub_cache[super_id] = sub
        return sub

    # -- aggregates -------------------------------------------------------------

    def super_capability(self, super_id: SuperId) -> FrozenSet[ServiceName]:
        """Set-union service aggregate of a whole super-cluster."""
        return aggregate_capability(
            self.hfc.overlay.placement, self.members(super_id)
        )

    # -- state accounting (the E5 overhead extension) ----------------------------------

    def coordinates_node_states(self) -> Dict[ProxyId, int]:
        """Per-proxy coordinate entries under the three-level state model."""
        result: Dict[ProxyId, int] = {}
        all_super_borders = set(self.all_super_borders())
        for sid, cluster_ids in self.cluster_members.items():
            # borders between cluster pairs inside this super-cluster
            local_borders = {
                proxy
                for (i, j), proxy in self.hfc.borders.items()
                if i in cluster_ids and j in cluster_ids
            }
            for cid in cluster_ids:
                members = set(self.hfc.members(cid))
                outside_borders = len(local_borders - members)
                outside_super = len(all_super_borders - members - local_borders)
                for proxy in members:
                    result[proxy] = len(members) + outside_borders + outside_super
        return result

    def service_node_states(self) -> Dict[ProxyId, int]:
        """Per-proxy service entries under the three-level state model."""
        result: Dict[ProxyId, int] = {}
        for sid, cluster_ids in self.cluster_members.items():
            for cid in cluster_ids:
                members = self.hfc.members(cid)
                count = len(members) + len(cluster_ids) + self.super_count
                for proxy in members:
                    result[proxy] = count
        return result


def build_multilevel(
    hfc: HFCTopology,
    config: Optional[ClusteringConfig] = None,
    *,
    method: str = "kcenter",
    super_count: Optional[int] = None,
    seed=0,
) -> MultiLevelHFC:
    """Group *hfc*'s clusters into super-clusters and select super-borders.

    Cluster centroids are grouped either by greedy k-center
    (``method="kcenter"``, the default — balanced super-clusters; k
    defaults to ~sqrt(cluster count), the size that balances the two state
    terms) or by the same Zahn MST method used at level 1
    (``method="mst"`` — proximity-faithful but often lopsided, since the
    centroid cloud rarely has strong gaps).

    Construction is a thin shim over the level-generic
    :func:`repro.hierarchy.levels.build_levels` at ``depth=3`` — there is
    a single implementation of centroid means, re-clustering, and
    super-border selection; this wrapper only converts the CSR level
    arrays back into the dict surface of :class:`MultiLevelHFC`.
    """
    from repro.hierarchy.levels import build_levels

    hierarchy = build_levels(
        hfc,
        3,
        method=method,
        group_counts=[super_count],
        seed=seed,
        config=config,
    )
    level = hierarchy.levels[0]
    super_of_cluster: Dict[ClusterId, SuperId] = {
        cid: int(level.parent[cid]) for cid in range(hfc.cluster_count)
    }
    cluster_members: Dict[SuperId, List[ClusterId]] = {
        sid: list(level.members_of(sid)) for sid in range(level.count)
    }
    super_borders: Dict[Tuple[SuperId, SuperId], ProxyId] = {}
    k = level.count
    for i in range(k):
        for j in range(i + 1, k):
            super_borders[(i, j)] = hierarchy.row_proxies[
                int(level.border_matrix[i, j])
            ]
            super_borders[(j, i)] = hierarchy.row_proxies[
                int(level.border_matrix[j, i])
            ]
    return MultiLevelHFC(
        hfc=hfc,
        super_of_cluster=super_of_cluster,
        cluster_members=cluster_members,
        super_borders=super_borders,
    )


class _SuperView:
    """Duck-typed 'HFC' whose clusters are the super-clusters.

    Lets :class:`~repro.routing.hierarchical.HierarchicalRouter`'s
    cluster-level machinery run unchanged one level up.
    """

    def __init__(self, multilevel: MultiLevelHFC) -> None:
        self._ml = multilevel
        self.space = multilevel.hfc.space
        self.overlay = multilevel.hfc.overlay

    @property
    def cluster_count(self) -> int:
        return self._ml.super_count

    def cluster_of(self, proxy: ProxyId) -> SuperId:
        return self._ml.super_of(proxy)

    def members(self, super_id: SuperId) -> List[ProxyId]:
        return self._ml.members(super_id)

    def border(self, i: SuperId, j: SuperId) -> ProxyId:
        return self._ml.super_border(i, j)

    def external_estimate(self, i: SuperId, j: SuperId) -> float:
        return self.space.distance(
            self._ml.super_border(i, j), self._ml.super_border(j, i)
        )

    def expand_hop(self, u: ProxyId, v: ProxyId) -> List[ProxyId]:
        """Relay expansion respecting all three levels.

        Same super-cluster: expand through the bi-level sub-structure.
        Different super-clusters: out through the super-border pair, with
        each intra-super segment expanded recursively.
        """
        ml = self._ml
        if u == v:
            return [u]
        su, sv = ml.super_of(u), ml.super_of(v)
        if su == sv:
            return ml.sub_hfc(su).expand_hop(u, v)
        exit_border = ml.super_border(su, sv)
        entry_border = ml.super_border(sv, su)
        head = ml.sub_hfc(su).expand_hop(u, exit_border)
        tail = ml.sub_hfc(sv).expand_hop(entry_border, v)
        return head + tail


class ThreeLevelRouter(HierarchicalRouter):
    """Divide-and-conquer routing over a three-level hierarchy.

    The super level runs the paper's Section-5 relaxation verbatim (through
    :class:`_SuperView`); each super-cluster child is then resolved by a
    bi-level :class:`HierarchicalRouter` restricted to that super-cluster,
    and relay-only children cross the super-cluster along its internal
    border structure.
    """

    def __init__(self, multilevel: MultiLevelHFC, **kwargs) -> None:
        self.multilevel = multilevel
        capabilities = {
            sid: multilevel.super_capability(sid)
            for sid in multilevel.cluster_members
        }
        kwargs.setdefault("cluster_capabilities", capabilities)
        super().__init__(_SuperView(multilevel), **kwargs)  # type: ignore[arg-type]
        self._sub_routers: Dict[SuperId, HierarchicalRouter] = {}

    def _sub_router(self, super_id: SuperId) -> HierarchicalRouter:
        cached = self._sub_routers.get(super_id)
        if cached is None:
            cached = HierarchicalRouter(
                self.multilevel.sub_hfc(super_id),
                method=self.method,
                use_numpy=self.use_numpy,
            )
            self._sub_routers[super_id] = cached
        return cached

    def solve_child(self, request, child):
        from repro.services.graph import ServiceGraph
        from repro.services.request import ServiceRequest

        multilevel = self.multilevel
        if not child.slots:
            # relay across the super-cluster along its level-1 structure
            hops = multilevel.sub_hfc(child.cluster).expand_hop(
                child.source_proxy, child.destination_proxy
            )
            merged = merge_consecutive_hops([Hop(proxy=p) for p in hops])
            return ServicePath(hops=tuple(merged))
        sg = request.service_graph
        sub_sg = ServiceGraph(
            services={slot: sg.service_of(slot) for slot in child.slots},
            edges=frozenset(zip(child.slots, child.slots[1:])),
        )
        sub_request = ServiceRequest(
            source_proxy=child.source_proxy,
            service_graph=sub_sg,
            destination_proxy=child.destination_proxy,
        )
        return self._sub_router(child.cluster).route(sub_request)
