"""Distance-based clustering: Zahn MST clustering, quality metrics, baselines."""

from repro.cluster.kcenter import kcenter_cluster
from repro.cluster.mstcluster import Clustering, ClusteringConfig, cluster_nodes
from repro.cluster.quality import (
    inter_cluster_mean_distance,
    intra_cluster_mean_distance,
    separation_ratio,
    silhouette_mean,
    size_statistics,
)

__all__ = [
    "Clustering",
    "ClusteringConfig",
    "cluster_nodes",
    "inter_cluster_mean_distance",
    "intra_cluster_mean_distance",
    "kcenter_cluster",
    "separation_ratio",
    "silhouette_mean",
    "size_statistics",
]
