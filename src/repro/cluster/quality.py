"""Clustering-quality diagnostics.

The paper argues distance-based clustering makes "small groups of closely
located proxies" — these metrics quantify that claim and power the churn
experiment (clustering quality decaying under joins/leaves) and the
inconsistency-factor ablation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

import numpy as np

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.util.errors import ClusteringError

NodeId = Hashable


def intra_cluster_mean_distance(space: CoordinateSpace, clustering: Clustering) -> float:
    """Mean pairwise geometric distance within clusters (size >= 2 only)."""
    totals = []
    for members in clustering.clusters:
        if len(members) < 2:
            continue
        matrix = space.distance_matrix(members)
        iu = np.triu_indices_from(matrix, k=1)
        totals.extend(matrix[iu].tolist())
    if not totals:
        raise ClusteringError("no cluster with >= 2 members")
    return float(np.mean(totals))


def inter_cluster_mean_distance(space: CoordinateSpace, clustering: Clustering) -> float:
    """Mean centroid-to-centroid distance between distinct clusters."""
    if clustering.cluster_count < 2:
        raise ClusteringError("need >= 2 clusters for inter-cluster distance")
    centroids = np.array(
        [space.array(members).mean(axis=0) for members in clustering.clusters]
    )
    diff = centroids[:, None, :] - centroids[None, :, :]
    matrix = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    iu = np.triu_indices_from(matrix, k=1)
    return float(matrix[iu].mean())


def separation_ratio(space: CoordinateSpace, clustering: Clustering) -> float:
    """inter / intra mean distance — higher means better-separated clusters."""
    return inter_cluster_mean_distance(space, clustering) / max(
        intra_cluster_mean_distance(space, clustering), 1e-12
    )


def silhouette_mean(
    space: CoordinateSpace,
    clustering: Clustering,
    sample: int = 200,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient over up to *sample* nodes.

    Standard definition: for node i with mean intra-cluster distance a(i) and
    smallest mean distance to another cluster b(i), the silhouette is
    ``(b - a) / max(a, b)``; nodes in singleton clusters contribute 0.
    """
    import random

    if clustering.cluster_count < 2:
        raise ClusteringError("silhouette requires >= 2 clusters")
    rng = random.Random(seed)
    nodes = list(clustering.labels)
    if len(nodes) > sample:
        nodes = rng.sample(nodes, sample)
    scores: List[float] = []
    cluster_arrays = [space.array(members) for members in clustering.clusters]
    for node in nodes:
        own = clustering.cluster_of(node)
        point = np.array(space.coordinate(node))
        own_members = clustering.clusters[own]
        if len(own_members) < 2:
            scores.append(0.0)
            continue
        own_d = np.linalg.norm(cluster_arrays[own] - point, axis=1)
        a = float(own_d.sum() / (len(own_members) - 1))
        b = min(
            float(np.linalg.norm(cluster_arrays[cid] - point, axis=1).mean())
            for cid in range(clustering.cluster_count)
            if cid != own
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))


def size_statistics(clustering: Clustering) -> Dict[str, float]:
    """Min/max/mean/std of cluster sizes plus largest-cluster fraction."""
    sizes = np.array(clustering.sizes(), dtype=float)
    total = sizes.sum()
    return {
        "count": float(sizes.size),
        "min": float(sizes.min()),
        "max": float(sizes.max()),
        "mean": float(sizes.mean()),
        "std": float(sizes.std()),
        "largest_fraction": float(sizes.max() / total) if total else 0.0,
    }
