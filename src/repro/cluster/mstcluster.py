"""Zahn's MST-based cluster detection (paper Section 3.2).

The paper adopts Zahn's 1971 graph-theoretic method, guided by the Gestalt
principle of grouping by proximity:

1. build the minimum spanning tree of the proxy points in coordinate space;
2. identify *inconsistent* edges — edges significantly longer than the
   average of nearby edge lengths;
3. remove them; the resulting connected components are the clusters.

The paper's inconsistency wording ("let T_l and T_r denote the left and right
sub-trees connected by l, whose average length of links is denoted by b; l is
inconsistent if a/b > k") leaves two knobs open, which we expose:

* ``depth`` — how far into each side's subtree the "nearby" average looks
  (Zahn's original uses a small neighbourhood; ``None`` means the entire
  subtree, the literal reading of the paper);
* ``combine`` — how the two side averages merge into b (``"mean"``, ``"max"``
  or ``"min"``). ``"max"`` is the conservative default: an edge must dominate
  the sparser side too before it is cut.

Degenerate micro-clusters are optionally merged into their nearest cluster
(``min_cluster_size``), since a singleton cluster carries no internal links
but would inflate the border-node count in the HFC topology.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.graph.mst import euclidean_mst
from repro.util.errors import ClusteringError

NodeId = Hashable


@dataclass
class ClusteringConfig:
    """Tunables of the MST clusterer.

    Attributes:
        factor: the paper's k — an edge of length a is inconsistent when
            ``a / b > factor`` (paper suggests "2, 3, ...").
        depth: BFS depth for the nearby-edge average on each side;
            ``None`` averages over the whole subtree.
        combine: how the two side averages form b: "mean", "max" or "min".
        min_cluster_size: clusters smaller than this are merged into their
            nearest cluster (0 or 1 disables merging).
        max_clusters: optional hard cap; if exceeded, the weakest cuts
            (smallest a/b ratio) are undone until the cap holds.
    """

    factor: float = 2.0
    depth: Optional[int] = 2
    combine: str = "max"
    min_cluster_size: int = 2
    max_clusters: Optional[int] = None

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ClusteringError(f"factor must be > 1, got {self.factor}")
        if self.depth is not None and self.depth < 1:
            raise ClusteringError(f"depth must be >= 1 or None, got {self.depth}")
        if self.combine not in ("mean", "max", "min"):
            raise ClusteringError(f"combine must be mean/max/min, got {self.combine!r}")
        if self.max_clusters is not None and self.max_clusters < 1:
            raise ClusteringError("max_clusters must be >= 1")


@dataclass
class Clustering:
    """A partition of overlay nodes into proximity clusters.

    Attributes:
        clusters: node lists, one per cluster, index = cluster id.
        labels: node -> cluster id.
        removed_edges: the inconsistent MST edges that were cut,
            as ``(u, v, length, ratio)``.
    """

    clusters: List[List[NodeId]]
    labels: Dict[NodeId, int]
    removed_edges: List[Tuple[NodeId, NodeId, float, float]] = field(
        default_factory=list
    )

    @property
    def cluster_count(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    def cluster_of(self, node: NodeId) -> int:
        """Cluster id of *node*."""
        try:
            return self.labels[node]
        except KeyError:
            raise ClusteringError(f"node {node!r} not in clustering") from None

    def members(self, cluster_id: int) -> List[NodeId]:
        """Nodes in cluster *cluster_id*."""
        if not 0 <= cluster_id < len(self.clusters):
            raise ClusteringError(f"no cluster {cluster_id}")
        return self.clusters[cluster_id]

    def sizes(self) -> List[int]:
        """Cluster sizes, by cluster id."""
        return [len(c) for c in self.clusters]

    def same_cluster(self, u: NodeId, v: NodeId) -> bool:
        """True if *u* and *v* share a cluster."""
        return self.cluster_of(u) == self.cluster_of(v)


def _side_average(
    adjacency: Dict[int, Dict[int, float]],
    start: int,
    banned_neighbor: int,
    depth: Optional[int],
) -> Optional[float]:
    """Average edge length in the subtree hanging off *start*, away from
    *banned_neighbor*, limited to *depth* BFS levels. None if that side
    has no edges (leaf)."""
    total = 0.0
    count = 0
    visited = {start, banned_neighbor}
    queue = deque([(start, 0)])
    while queue:
        node, d = queue.popleft()
        if depth is not None and d >= depth:
            continue
        for nbr, w in adjacency[node].items():
            if nbr in visited:
                continue
            total += w
            count += 1
            visited.add(nbr)
            queue.append((nbr, d + 1))
    if count == 0:
        return None
    return total / count


def _combine_sides(left: Optional[float], right: Optional[float], mode: str) -> Optional[float]:
    sides = [s for s in (left, right) if s is not None and s > 0]
    if not sides:
        return None
    if mode == "mean":
        return sum(sides) / len(sides)
    if mode == "max":
        return max(sides)
    return min(sides)


def cluster_nodes(
    space: CoordinateSpace,
    nodes: Optional[Sequence[NodeId]] = None,
    config: Optional[ClusteringConfig] = None,
    *,
    mst=euclidean_mst,
) -> Clustering:
    """Cluster *nodes* of *space* by Zahn's inconsistent-edge method.

    Returns a :class:`Clustering`. With a single node (or all points
    coincident) the result is one cluster. *mst* selects the MST kernel:
    the vectorized :func:`~repro.graph.mst.euclidean_mst` by default, or
    :func:`~repro.graph.mst.euclidean_mst_reference` when the benchmark /
    equivalence suites pin the pre-vectorization code path.
    """
    config = config or ClusteringConfig()
    node_list: List[NodeId] = list(nodes) if nodes is not None else space.nodes()
    if not node_list:
        raise ClusteringError("cannot cluster an empty node set")
    if len(node_list) == 1:
        return Clustering(clusters=[node_list], labels={node_list[0]: 0})

    points = space.array(node_list)
    mst_edges = mst(points)

    adjacency: Dict[int, Dict[int, float]] = {i: {} for i in range(len(node_list))}
    for i, j, w in mst_edges:
        adjacency[i][j] = w
        adjacency[j][i] = w

    # Score every MST edge: ratio = a / b (b = combined nearby average).
    cuts: List[Tuple[float, int, int, float]] = []  # (ratio, i, j, length)
    for i, j, a in mst_edges:
        left = _side_average(adjacency, i, j, config.depth)
        right = _side_average(adjacency, j, i, config.depth)
        b = _combine_sides(left, right, config.combine)
        if b is None or b == 0:
            continue
        ratio = a / b
        if ratio > config.factor:
            cuts.append((ratio, i, j, a))

    # Honour max_clusters by keeping only the strongest cuts.
    cuts.sort(reverse=True)
    if config.max_clusters is not None:
        cuts = cuts[: config.max_clusters - 1]

    removed = {(i, j) for _, i, j, _ in cuts}
    removed_edges = [
        (node_list[i], node_list[j], a, ratio) for ratio, i, j, a in cuts
    ]

    # Connected components of the MST minus the removed edges.
    labels_idx = _components_after_cuts(adjacency, removed, len(node_list))

    clusters_idx: Dict[int, List[int]] = {}
    for idx, label in enumerate(labels_idx):
        clusters_idx.setdefault(label, []).append(idx)
    cluster_lists = [sorted(v) for v in clusters_idx.values()]
    cluster_lists.sort(key=lambda c: c[0])

    if config.min_cluster_size > 1 and len(cluster_lists) > 1:
        cluster_lists = _merge_small_clusters(
            points, cluster_lists, config.min_cluster_size
        )

    clusters = [[node_list[i] for i in c] for c in cluster_lists]
    labels = {node: cid for cid, members in enumerate(clusters) for node in members}
    return Clustering(clusters=clusters, labels=labels, removed_edges=removed_edges)


def _components_after_cuts(
    adjacency: Dict[int, Dict[int, float]],
    removed: set,
    n: int,
) -> List[int]:
    """Component label per node index after removing *removed* edges."""
    labels = [-1] * n
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        queue = deque([start])
        labels[start] = current
        while queue:
            node = queue.popleft()
            for nbr in adjacency[node]:
                if labels[nbr] != -1:
                    continue
                if (node, nbr) in removed or (nbr, node) in removed:
                    continue
                labels[nbr] = current
                queue.append(nbr)
        current += 1
    return labels


def _merge_small_clusters(
    points: np.ndarray,
    clusters: List[List[int]],
    min_size: int,
) -> List[List[int]]:
    """Merge clusters below *min_size* into their nearest larger cluster.

    Nearest is measured centroid-to-centroid, mirroring how a late-joining
    proxy would pick "the cluster of its nearest neighbours" (Section 7).
    Merging repeats until every cluster meets the minimum or one remains.
    """
    clusters = [list(c) for c in clusters]
    while len(clusters) > 1:
        sizes = [len(c) for c in clusters]
        small = [i for i, s in enumerate(sizes) if s < min_size]
        if not small:
            break
        # Merge the smallest offender first for determinism.
        victim = min(small, key=lambda i: (sizes[i], clusters[i][0]))
        centroids = [points[c].mean(axis=0) for c in clusters]
        best = None
        best_d = float("inf")
        for i, centroid in enumerate(centroids):
            if i == victim:
                continue
            d = float(np.linalg.norm(centroid - centroids[victim]))
            if d < best_d:
                best, best_d = i, d
        assert best is not None
        clusters[best] = sorted(clusters[best] + clusters[victim])
        del clusters[victim]
    return clusters
