"""Greedy k-center clustering — an ablation baseline.

The paper commits to Zahn's MST clustering; this module provides the obvious
alternative (greedy 2-approximate k-center: pick the farthest point as the
next center, assign everyone to the nearest center) so the ablation benches
can ask whether the HFC results depend on the specific clusterer.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.util.errors import ClusteringError
from repro.util.rng import RngLike, ensure_rng

NodeId = Hashable


def kcenter_cluster(
    space: CoordinateSpace,
    k: int,
    nodes: Optional[Sequence[NodeId]] = None,
    seed: RngLike = None,
) -> Clustering:
    """Partition *nodes* into *k* clusters by greedy k-center.

    The first center is random (seeded); each subsequent center is the node
    farthest from all existing centers; finally every node joins its nearest
    center. Returns the same :class:`Clustering` type as the MST clusterer so
    downstream code is clusterer-agnostic.
    """
    node_list: List[NodeId] = list(nodes) if nodes is not None else space.nodes()
    if not node_list:
        raise ClusteringError("cannot cluster an empty node set")
    if k < 1:
        raise ClusteringError(f"k must be >= 1, got {k}")
    k = min(k, len(node_list))
    rng = ensure_rng(seed)
    points = space.array(node_list)

    first = rng.randrange(len(node_list))
    centers = [first]
    min_dist = np.linalg.norm(points - points[first], axis=1)
    while len(centers) < k:
        nxt = int(np.argmax(min_dist))
        if min_dist[nxt] == 0.0:
            break  # all remaining points coincide with a center
        centers.append(nxt)
        dist = np.linalg.norm(points - points[nxt], axis=1)
        min_dist = np.minimum(min_dist, dist)

    center_points = points[centers]
    diff = points[:, None, :] - center_points[None, :, :]
    assignments = np.argmin(np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)), axis=1)

    clusters: List[List[NodeId]] = [[] for _ in centers]
    for idx, label in enumerate(assignments):
        clusters[int(label)].append(node_list[idx])
    clusters = [c for c in clusters if c]
    labels = {node: cid for cid, members in enumerate(clusters) for node in members}
    return Clustering(clusters=clusters, labels=labels)
