"""repro — reproduction of Jin & Nahrstedt, *Large-Scale Service Overlay
Networking with Distance-Based Clustering* (Middleware 2003).

The public API lives in :mod:`repro.core`:

>>> from repro.core import HFCFramework, FrameworkConfig
>>> framework = HFCFramework.build(proxy_count=100, physical_nodes=300, seed=7)
>>> path = framework.route(framework.random_request(seed=1))
>>> path.true_delay  # doctest: +SKIP
42.0

Subpackages mirror the paper's structure: :mod:`repro.netsim` (physical
substrate), :mod:`repro.coords` (Section 3.1), :mod:`repro.cluster`
(Section 3.2), :mod:`repro.overlay` (Section 3.3 / HFC), :mod:`repro.state`
(Section 4), :mod:`repro.routing` (Section 5), :mod:`repro.experiments`
(Section 6), plus the future-work extensions :mod:`repro.membership` and
:mod:`repro.qos`, and the deterministic fault-injection harness
:mod:`repro.faults` (fault plans, delivery interception, convergence
auditing).
"""

from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework

__version__ = "1.0.0"

__all__ = ["FrameworkConfig", "HFCFramework", "__version__"]
