"""Columnar overlay state: one struct-of-arrays view shared by every kernel.

The vectorized kernels grown in PRs 2/4 (construction, batched routing)
and the incremental membership layer (PR 3) each used to materialise their
own dense views from the object graph: the coordinate space re-stacked its
tuple table per materialisation, ``query_tables`` walked ``Clustering`` /
``borders`` objects, and the churn layer kept a private dict-of-tuples
coordinate store. This module replaces those private views with a single
numpy struct-of-arrays snapshot of the overlay:

* ``proxies``   — ``(n,)`` int64, the overlay proxy list in its canonical
  order (row ``r`` of every other per-proxy column describes proxy
  ``proxies[r]``);
* ``coords``    — ``(n, k)`` float64 coordinates. **This array is the
  storage** of every :class:`~repro.coords.space.CoordinateSpace` view the
  state hands out (:meth:`CoordinateSpace.from_stacked`), so routing
  providers, border selection, and the CSP relaxation all read views of
  the same buffer — zero copies between layers;
* ``labels``    — ``(n,)`` int64 cluster membership;
* ``cluster_ptr`` / ``cluster_members`` — CSR encoding of the per-cluster
  member lists, **preserving the source clustering's member order** (that
  order is load-bearing: border selection breaks argmin ties toward the
  earliest member index);
* ``border_matrix`` — ``(C, C)`` int64; entry ``(i, j)`` is the *row* of
  the border proxy inside cluster ``i`` facing cluster ``j`` (``-1`` on
  the diagonal) — the SCT/border table in dense form;
* ``service_names`` + ``placement_ptr`` / ``placement_codes`` — CSR
  service placement over a sorted service-name vocabulary (codes sorted
  within each row, so the reconstructed frozensets are exact).

``epoch`` / ``step`` record the :class:`~repro.core.versioning.
OverlayVersion` the snapshot was taken at, which is how warm starts
(``repro.persistence`` snapshots, :meth:`DynamicOverlay.from_snapshot`)
resume version-driven consumers instead of resetting them.

The state is immutable by convention: mutating layers (churn) build a new
one via :meth:`from_parts` when asked (``DynamicOverlay.columnar()``);
derived views and the query tables are cached on the instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.core.versioning import OverlayVersion
from repro.overlay.network import ProxyId
from repro.services.catalog import ServiceName
from repro.util.errors import StateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (routing imports state)
    from repro.overlay.hfc import HFCTopology
    from repro.overlay.network import OverlayNetwork
    from repro.routing.batch import QueryTables


def attach_columnar(hfc: Any, state: "ColumnarOverlayState") -> None:
    """Attach *state* to *hfc* so shared-view consumers can find it.

    ``repro.routing.batch.query_tables`` consults the attachment and
    reuses the state's cached tables instead of rebuilding dense views
    from the object graph; the attachment survives for the lifetime of
    the topology object (topology mutations materialise new objects, the
    same convention the ``_query_tables_cache`` relies on).
    """
    hfc.columnar = state


@dataclass
class HierarchyLevel:
    """One upper level of a recursive hierarchy, in columnar (CSR) form.

    A depth-``L`` hierarchy stores ``L - 2`` of these: entry ``k`` groups
    the units of level ``k + 1`` (level 1 = the base clusters) into the
    groups of level ``k + 2``. All arrays index *units of the level
    below* by their ids and *proxies* by their row in the owning state's
    ``proxies`` column, so the whole stack shares one coordinate buffer:

    * ``parent``  — ``(count_below,)`` int64, below-unit id -> group id;
    * ``ptr`` / ``members`` — CSR of per-group below-unit lists, ids
      ascending within each group (the build order, load-bearing for the
      border gather);
    * ``border_matrix`` — ``(count, count)`` int64 proxy *rows*; entry
      ``(i, j)`` is the border proxy inside group ``i`` facing group
      ``j`` (``-1`` on the diagonal);
    * ``centroids`` — ``(count, dim)`` float64, each group's centroid
      (mean of its children's centroids), the input of the next level's
      re-clustering.
    """

    parent: np.ndarray         # (count_below,) int64
    ptr: np.ndarray            # (count+1,) int64
    members: np.ndarray        # (count_below,) int64 below-unit ids
    border_matrix: np.ndarray  # (count, count) int64 proxy rows, -1 diagonal
    centroids: np.ndarray      # (count, dim) float64

    @property
    def count(self) -> int:
        """Number of groups at this level."""
        return int(self.border_matrix.shape[0])

    @property
    def count_below(self) -> int:
        """Number of units at the level below."""
        return int(self.parent.shape[0])

    def members_of(self, group_id: int) -> List[int]:
        """Below-unit ids of *group_id*, ascending."""
        if not 0 <= group_id < self.count:
            raise StateError(f"no hierarchy group {group_id}")
        lo, hi = int(self.ptr[group_id]), int(self.ptr[group_id + 1])
        return [int(u) for u in self.members[lo:hi]]

    def groups(self) -> List[List[int]]:
        """All per-group below-unit lists, in group-id order."""
        return [self.members_of(g) for g in range(self.count)]

    def validate(self, count_below: int, dimension: int) -> None:
        """Structural invariants against the level below; raises StateError."""
        c = self.count
        if self.parent.shape != (count_below,):
            raise StateError("hierarchy level: parent shape disagrees")
        if self.ptr.shape != (c + 1,) or self.members.shape != (count_below,):
            raise StateError("hierarchy level: CSR shapes disagree")
        if self.ptr[0] != 0 or self.ptr[-1] != count_below:
            raise StateError("hierarchy level: ptr does not span all units")
        if self.centroids.shape != (c, dimension):
            raise StateError("hierarchy level: centroid shape disagrees")
        if count_below and (
            int(self.parent.min()) < 0 or int(self.parent.max()) >= c
        ):
            raise StateError("hierarchy level: parent outside [0, count)")
        for g in range(c):
            for u in self.members_of(g):
                if int(self.parent[u]) != g:
                    raise StateError("hierarchy level: parent/members disagree")


@dataclass
class ColumnarOverlayState:
    """A struct-of-arrays snapshot of one consistent overlay state."""

    proxies: np.ndarray          # (n,) int64
    coords: np.ndarray           # (n, k) float64 — shared with space views
    labels: np.ndarray           # (n,) int64
    cluster_ptr: np.ndarray      # (C+1,) int64
    cluster_members: np.ndarray  # (n,) int64 row indices, cluster-major
    border_matrix: np.ndarray    # (C, C) int64 row indices, -1 diagonal
    service_names: List[str]     # service code -> name (sorted vocabulary)
    placement_ptr: np.ndarray    # (n+1,) int64
    placement_codes: np.ndarray  # (nnz,) int64, sorted within each row
    epoch: int = 0
    step: int = 0
    levels: List[HierarchyLevel] = field(default_factory=list)
    _space: Optional[CoordinateSpace] = field(default=None, init=False, repr=False)
    _clustering: Optional[Clustering] = field(default=None, init=False, repr=False)
    _tables: Optional["QueryTables"] = field(default=None, init=False, repr=False)
    _level_tables: Dict[int, "QueryTables"] = field(
        default_factory=dict, init=False, repr=False
    )

    # -- shape -------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of proxies n."""
        return int(self.proxies.shape[0])

    @property
    def dimension(self) -> int:
        """Coordinate dimension k."""
        return int(self.coords.shape[1])

    @property
    def cluster_count(self) -> int:
        """Number of clusters C."""
        return int(self.border_matrix.shape[0])

    @property
    def version(self) -> OverlayVersion:
        """The overlay version this state was captured at."""
        return OverlayVersion(self.epoch, self.step)

    def validate(self) -> None:
        """Cheap structural invariants; raises :class:`StateError`."""
        n, c = self.size, self.cluster_count
        if self.coords.shape != (n, self.dimension) or self.labels.shape != (n,):
            raise StateError("columnar state: per-proxy column shapes disagree")
        if self.cluster_ptr.shape != (c + 1,) or self.cluster_members.shape != (n,):
            raise StateError("columnar state: cluster CSR shapes disagree")
        if self.cluster_ptr[0] != 0 or self.cluster_ptr[-1] != n:
            raise StateError("columnar state: cluster_ptr does not span all rows")
        if self.placement_ptr.shape != (n + 1,):
            raise StateError("columnar state: placement_ptr shape disagrees")
        if c and (int(self.labels.min()) < 0 or int(self.labels.max()) >= c):
            raise StateError("columnar state: label outside [0, C)")
        if len(self.placement_codes) and int(self.placement_codes.max()) >= len(
            self.service_names
        ):
            raise StateError("columnar state: placement code outside vocabulary")
        below = c
        for level in self.levels:
            level.validate(below, self.dimension)
            if level.count and (
                int(level.border_matrix.max()) >= n
                or int(level.border_matrix.min()) < -1
            ):
                raise StateError("columnar state: level border row outside [0, n)")
            below = level.count

    def attach_levels(self, levels: List[HierarchyLevel]) -> None:
        """Attach (or replace) the recursive hierarchy's upper-level stack.

        The arrays become part of this state — snapshots round-trip them,
        and :meth:`level_query_tables` serves the per-level CSP tables the
        recursive router consumes zero-copy. Cached tables for any
        previous stack are dropped; the combined state is re-validated.
        """
        self.levels = list(levels)
        self._level_tables.clear()
        self.validate()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        *,
        proxies: List[ProxyId],
        space: CoordinateSpace,
        clustering: Clustering,
        borders: Mapping[Tuple[int, int], ProxyId],
        placement: Mapping[ProxyId, FrozenSet[ServiceName]],
        version: Optional[OverlayVersion] = None,
        levels: Optional[List[HierarchyLevel]] = None,
    ) -> "ColumnarOverlayState":
        """Build the columnar snapshot of one consistent overlay state.

        Row order follows *proxies* (the overlay's canonical proxy list);
        per-cluster member order follows *clustering* exactly.
        """
        n = len(proxies)
        row = {p: r for r, p in enumerate(proxies)}
        if len(row) != n:
            raise StateError("duplicate proxy ids")
        proxy_arr = np.array(proxies, dtype=np.int64)
        coords = np.ascontiguousarray(space.array(proxies), dtype=float)
        labels = np.array([clustering.cluster_of(p) for p in proxies], dtype=np.int64)
        c = clustering.cluster_count
        ptr = np.zeros(c + 1, dtype=np.int64)
        members = np.empty(n, dtype=np.int64)
        at = 0
        for cid in range(c):
            cluster = clustering.members(cid)
            ptr[cid] = at
            for p in cluster:
                if p not in row or at >= n:
                    raise StateError(
                        "clustering does not cover the proxy list exactly"
                    )
                members[at] = row[p]
                at += 1
        ptr[c] = at
        if at != n:
            raise StateError("clustering does not cover the proxy list exactly")
        border_matrix = np.full((c, c), -1, dtype=np.int64)
        for (i, j), p in borders.items():
            border_matrix[i, j] = row[p]
        vocab = sorted({s for services in placement.values() for s in services})
        code = {s: i for i, s in enumerate(vocab)}
        placement_ptr = np.zeros(n + 1, dtype=np.int64)
        codes: List[int] = []
        for r, p in enumerate(proxies):
            codes.extend(sorted(code[s] for s in placement[p]))
            placement_ptr[r + 1] = len(codes)
        version = version or OverlayVersion()
        state = cls(
            proxies=proxy_arr,
            coords=coords,
            labels=labels,
            cluster_ptr=ptr,
            cluster_members=members,
            border_matrix=border_matrix,
            service_names=vocab,
            placement_ptr=placement_ptr,
            placement_codes=np.array(codes, dtype=np.int64),
            epoch=version.epoch,
            step=version.step,
            levels=list(levels) if levels else [],
        )
        state.validate()
        return state

    @classmethod
    def from_framework(cls, framework: Any) -> "ColumnarOverlayState":
        """The columnar snapshot of a built :class:`HFCFramework`."""
        return cls.from_parts(
            proxies=list(framework.overlay.proxies),
            space=framework.space,
            clustering=framework.clustering,
            borders=framework.hfc.borders,
            placement=framework.overlay.placement,
        )

    # -- scalar accessors ----------------------------------------------------------

    def row_of(self, proxy: ProxyId) -> int:
        """Row index of *proxy* (O(n) scan; views cache their own maps)."""
        hits = np.nonzero(self.proxies == proxy)[0]
        if not len(hits):
            raise StateError(f"unknown proxy {proxy!r}")
        return int(hits[0])

    def members(self, cluster_id: int) -> List[ProxyId]:
        """Member proxies of *cluster_id*, in the source clustering's order."""
        if not 0 <= cluster_id < self.cluster_count:
            raise StateError(f"no cluster {cluster_id}")
        rows = self.cluster_members[
            int(self.cluster_ptr[cluster_id]) : int(self.cluster_ptr[cluster_id + 1])
        ]
        return [int(p) for p in self.proxies[rows]]

    def cluster_block(self, cluster_id: int) -> np.ndarray:
        """Coordinate block of one cluster (gathered from the shared array)."""
        rows = self.cluster_members[
            int(self.cluster_ptr[cluster_id]) : int(self.cluster_ptr[cluster_id + 1])
        ]
        return self.coords[rows]

    def services_of_row(self, r: int) -> FrozenSet[ServiceName]:
        """Service set of row *r*, decoded from the placement CSR."""
        codes = self.placement_codes[
            int(self.placement_ptr[r]) : int(self.placement_ptr[r + 1])
        ]
        return frozenset(self.service_names[int(cd)] for cd in codes)

    def borders_dict(self) -> Dict[Tuple[int, int], ProxyId]:
        """The ``(i, j) -> border proxy`` dict form of ``border_matrix``."""
        out: Dict[Tuple[int, int], ProxyId] = {}
        c = self.cluster_count
        for i in range(c):
            for j in range(c):
                r = int(self.border_matrix[i, j])
                if r >= 0:
                    out[(i, j)] = int(self.proxies[r])
        return out

    def placement_dict(self) -> Dict[ProxyId, FrozenSet[ServiceName]]:
        """The per-proxy service placement, decoded."""
        return {
            int(self.proxies[r]): self.services_of_row(r) for r in range(self.size)
        }

    def shard_views(self, bounds: Sequence[int]) -> List["ColumnarShard"]:
        """Slice the state into contiguous-cluster shards, zero-copy.

        *bounds* is an increasing cluster-boundary sequence
        ``[0, b1, ..., C]``; shard ``s`` owns clusters ``[bounds[s],
        bounds[s+1])``. Because ``cluster_members`` is cluster-major, a
        contiguous cluster range maps to a contiguous member-row range, so
        every array in the returned views is a numpy view into this state's
        storage (``coords`` is the shared buffer itself) — no copies.
        """
        bounds = [int(b) for b in bounds]
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != self.cluster_count:
            raise StateError(f"shard bounds must run 0..{self.cluster_count}, got {bounds}")
        if any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
            raise StateError(f"shard bounds must be strictly increasing, got {bounds}")
        views = []
        for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            r0 = int(self.cluster_ptr[lo])
            r1 = int(self.cluster_ptr[hi])
            views.append(
                ColumnarShard(
                    shard=s,
                    cluster_lo=lo,
                    cluster_hi=hi,
                    cluster_ptr=self.cluster_ptr[lo : hi + 1],
                    member_rows=self.cluster_members[r0:r1],
                    border_rows=self.border_matrix[lo:hi],
                    coords=self.coords,
                    proxies=self.proxies,
                )
            )
        return views

    # -- derived views (cached, zero-copy where the layout allows) -----------------

    def space_view(self) -> CoordinateSpace:
        """A coordinate space whose storage **is** :attr:`coords`."""
        if self._space is None:
            self._space = CoordinateSpace.from_stacked(
                [int(p) for p in self.proxies], self.coords
            )
        return self._space

    def clustering_view(self) -> Clustering:
        """The :class:`Clustering` these columns encode (member order kept)."""
        if self._clustering is None:
            clusters = [self.members(cid) for cid in range(self.cluster_count)]
            labels = {
                int(p): int(cid) for p, cid in zip(self.proxies, self.labels)
            }
            self._clustering = Clustering(clusters=clusters, labels=labels)
        return self._clustering

    def overlay_view(self, physical: Any) -> "OverlayNetwork":
        """An :class:`OverlayNetwork` over *physical* sharing the space view."""
        from repro.overlay.network import OverlayNetwork

        return OverlayNetwork(
            physical=physical,
            proxies=[int(p) for p in self.proxies],
            placement=self.placement_dict(),
            space=self.space_view(),
        )

    def hfc_view(self, physical: Any) -> "HFCTopology":
        """The full HFC topology view, with this state attached.

        The returned topology shares the columnar coordinate array through
        its space, carries ``columnar = self`` (so
        :func:`repro.routing.batch.query_tables` reuses
        :meth:`query_tables` instead of walking the object graph), and is
        exactly what a scratch ``build_hfc`` over the same inputs yields —
        the equivalence suite asserts identical routing.
        """
        from repro.overlay.hfc import HFCTopology

        hfc = HFCTopology(
            overlay=self.overlay_view(physical),
            clustering=self.clustering_view(),
            space=self.space_view(),
            borders=self.borders_dict(),
        )
        attach_columnar(hfc, self)
        return hfc

    def query_tables(self) -> "QueryTables":
        """The dense CSP relaxation tables, built from the columns.

        Shape, code assignment order, and every float are identical to
        :func:`repro.routing.batch.query_tables` over the equivalent
        object graph: entries are computed with the same scalar
        ``math.dist`` element calls on the same coordinates, discovered in
        the same ``(i, j)`` scan order — so the vectorized relaxation's
        argmin tie-breaks cannot diverge. Cached on the state, which is
        what makes the tables *shared*: every hfc/router materialised from
        this state sees one table instance.
        """
        if self._tables is None:
            self._tables = self._tables_from_matrix(self.border_matrix)
        return self._tables

    def level_query_tables(self, index: int) -> "QueryTables":
        """CSP relaxation tables over one *upper* level's border matrix.

        ``index`` selects ``levels[index]``; the resulting tables treat
        that level's groups as the "clusters" of the relaxation, reading
        border proxies and coordinates straight from the shared columns
        (same scalar ``math.dist`` calls, same ``(i, j)`` scan order as
        :meth:`query_tables`). Cached per level on the state, so every
        recursive router materialised from this state shares one table
        instance per level — the zero-copy path the batched top-level
        relaxation consumes.
        """
        if not 0 <= index < len(self.levels):
            raise StateError(f"no hierarchy level {index}")
        if index not in self._level_tables:
            self._level_tables[index] = self._tables_from_matrix(
                self.levels[index].border_matrix
            )
        return self._level_tables[index]

    def _tables_from_matrix(self, border_matrix: np.ndarray) -> "QueryTables":
        from repro.routing.batch import QueryTables

        k = int(border_matrix.shape[0])
        coord_tuples = [tuple(c) for c in self.coords.tolist()]
        ext = np.zeros((k, k), dtype=float)
        border_row = np.full((k, k), -1, dtype=np.int64)
        border_list: List[ProxyId] = []
        border_code: Dict[ProxyId, int] = {}
        code_row: List[int] = []
        cluster_codes: List[List[int]] = [[] for _ in range(k)]
        for i in range(k):
            for j in range(k):
                if i == j:
                    continue
                r = int(border_matrix[i, j])
                proxy = int(self.proxies[r])
                code = border_code.get(proxy)
                if code is None:
                    code = len(border_list)
                    border_code[proxy] = code
                    border_list.append(proxy)
                    code_row.append(r)
                    cluster_codes[i].append(code)
                border_row[i, j] = code
                ext[i, j] = math.dist(
                    coord_tuples[r], coord_tuples[int(border_matrix[j, i])]
                )
        nb = len(border_list)
        d_border = np.zeros((nb, nb), dtype=float)
        for codes in cluster_codes:
            for a in codes:
                for b in codes:
                    if a != b:
                        d_border[a, b] = math.dist(
                            coord_tuples[code_row[a]], coord_tuples[code_row[b]]
                        )
        return QueryTables(
            cluster_count=k,
            ext=ext,
            border_row=border_row,
            border_list=border_list,
            border_code=border_code,
            d_border=d_border,
        )


@dataclass(frozen=True)
class ColumnarShard:
    """One shard's zero-copy window onto a :class:`ColumnarOverlayState`.

    Shards own contiguous cluster-id ranges so every field below is a view
    (``np.shares_memory`` with the parent arrays holds); ``coords`` and
    ``proxies`` are the parent's shared buffers. ``cluster_ptr`` keeps the
    parent's global row offsets — subtract ``row_lo`` for shard-local
    indexing.
    """

    shard: int
    cluster_lo: int
    cluster_hi: int
    cluster_ptr: np.ndarray   # (C_s + 1,) view into the parent cluster_ptr
    member_rows: np.ndarray   # row indices of the shard's proxies (view)
    border_rows: np.ndarray   # (C_s, C) view into the parent border_matrix
    coords: np.ndarray        # the parent's shared coordinate buffer
    proxies: np.ndarray       # the parent's shared proxy-id column

    @property
    def cluster_count(self) -> int:
        """Number of clusters owned by this shard."""
        return self.cluster_hi - self.cluster_lo

    @property
    def size(self) -> int:
        """Number of proxies owned by this shard."""
        return int(self.member_rows.shape[0])

    @property
    def row_lo(self) -> int:
        """First global member-row offset covered by this shard."""
        return int(self.cluster_ptr[0])

    def proxy_ids(self) -> List[ProxyId]:
        """The shard's proxy ids (gather — the one non-view accessor)."""
        return [int(p) for p in self.proxies[self.member_rows]]
