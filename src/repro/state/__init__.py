"""State tables, the distribution protocol, and overhead accounting."""

from repro.state.columnar import (
    ColumnarOverlayState,
    HierarchyLevel,
    attach_columnar,
)
from repro.state.delta import (
    Announcement,
    DeltaAssembler,
    DeltaEmitter,
    aggregate_stream,
    announce_aggregates,
    assemble_aggregates,
)
from repro.state.overhead import (
    coordinates_node_states,
    flat_node_states,
    mean_coordinates_overhead,
    mean_service_overhead,
    message_overhead,
    service_node_states,
)
from repro.state.protocol import (
    ProtocolCapabilityFeed,
    ProtocolReport,
    StateDistributionProtocol,
)
from repro.state.tables import ProxyState, ServiceCapabilityTable

__all__ = [
    "Announcement",
    "ColumnarOverlayState",
    "HierarchyLevel",
    "aggregate_stream",
    "announce_aggregates",
    "assemble_aggregates",
    "attach_columnar",
    "DeltaAssembler",
    "DeltaEmitter",
    "ProtocolCapabilityFeed",
    "ProtocolReport",
    "ProxyState",
    "ServiceCapabilityTable",
    "StateDistributionProtocol",
    "coordinates_node_states",
    "flat_node_states",
    "mean_coordinates_overhead",
    "mean_service_overhead",
    "message_overhead",
    "service_node_states",
]
