"""Sequence-numbered delta announcements for the state plane.

The Section-4 protocol is soft state: senders periodically re-announce
capability sets whether or not they changed, which makes every period cost
O(|services|) per link at steady state. This module supplies the delta
encoding the incremental protocol mode uses instead:

* :class:`Announcement` — one announcement on one stream. Either a *full*
  snapshot (the complete capability set) or a *delta* (services added and
  removed since the previous announcement on the same stream), tagged with
  a per-stream sequence number.
* :class:`DeltaEmitter` — the sender side. Tracks the last announced set
  per stream, emits deltas, and re-emits a full snapshot every
  ``refresh_every`` announcements — the K-period refresh that keeps the
  soft-state safety net: any receiver that missed a delta (loss, late
  join) resynchronises at the next full snapshot without any
  retransmission machinery.
* :class:`DeltaAssembler` — the receiver side. Reassembles each stream's
  current set; **stale** announcements (sequence not newer than the last
  applied) are ignored, and deltas that don't extend the exact previous
  sequence (a **gap**) are ignored until the next full snapshot re-anchors
  the stream.

Crash/restart is first-class: announcements carry an **incarnation**
number alongside the sequence, and :meth:`DeltaEmitter.restart` hands out
the emitter for the next incarnation after a state wipe. Receivers accept
a full snapshot from a newer incarnation even though its sequence number
restarted at 1 — without this, a restarted sender would be rejected as
stale forever by every peer that saw its pre-crash announcements (the
fault-injection suite regression-tests exactly this).

Wire-size accounting: an announcement costs ``1`` abstract unit of header
(sequence number + stream key) plus one unit per service name carried —
so an unchanged set costs 1 instead of |services|, and the simulator's
byte counters (``sim.bytes.delivered``) directly show the savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.services.catalog import ServiceName
from repro.util.errors import StateError

#: a stream identity: (flow, origin, ...) — opaque to this module
StreamId = Tuple[Hashable, ...]


@dataclass(frozen=True)
class Announcement:
    """One announcement on one delta stream.

    ``full`` is the complete set for full snapshots (``added``/``removed``
    are empty); delta announcements carry only the symmetric difference
    against the stream's previous announcement.

    ``incarnation`` identifies the sender's boot: a sender that crashed
    and restarted with wiped state announces under a strictly larger
    incarnation, so receivers that remember the pre-crash sequence numbers
    do not reject the restarted stream as stale forever. Sequence numbers
    only order announcements *within* one incarnation.
    """

    seq: int
    full: Optional[FrozenSet[ServiceName]] = None
    added: FrozenSet[ServiceName] = frozenset()
    removed: FrozenSet[ServiceName] = frozenset()
    incarnation: int = 0

    @property
    def is_full(self) -> bool:
        return self.full is not None

    @property
    def wire_size(self) -> int:
        """Abstract message size: 1 header unit + 1 per service carried."""
        if self.full is not None:
            return 1 + len(self.full)
        return 1 + len(self.added) + len(self.removed)


@dataclass
class DeltaEmitter:
    """Sender-side delta encoding with a K-announcement full refresh."""

    #: every K-th announcement per stream is a full snapshot (K=1 means
    #: always-full, i.e. the legacy behaviour with a header byte). The
    #: default trades ~70% of the steady-state byte savings for a refresh
    #: frequent enough that 30%+ message loss still converges quickly.
    refresh_every: int = 4
    #: the sender's boot counter; bump via :meth:`restart` after a crash
    #: with state wipe so receivers accept the fresh streams
    incarnation: int = 0
    _last: Dict[StreamId, FrozenSet[ServiceName]] = field(default_factory=dict)
    _seq: Dict[StreamId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.refresh_every < 1:
            raise StateError(
                f"refresh_every must be >= 1, got {self.refresh_every}"
            )

    def announce(
        self, stream: StreamId, services: FrozenSet[ServiceName]
    ) -> Announcement:
        """The next announcement for *stream* now holding *services*."""
        services = frozenset(services)
        seq = self._seq.get(stream, 0) + 1
        self._seq[stream] = seq
        previous = self._last.get(stream)
        self._last[stream] = services
        if previous is None or (seq - 1) % self.refresh_every == 0:
            return Announcement(
                seq=seq, full=services, incarnation=self.incarnation
            )
        return Announcement(
            seq=seq,
            added=services - previous,
            removed=previous - services,
            incarnation=self.incarnation,
        )

    def restart(self) -> "DeltaEmitter":
        """A fresh emitter for the next incarnation of the same sender.

        Models a crash/restart with state wipe: per-stream history and
        sequence numbers are gone, but the incarnation counter is strictly
        larger than before (a real node would derive it from stable
        storage or a boot timestamp). Every stream's first announcement
        after a restart is therefore a full snapshot under a newer
        incarnation, which receivers accept even though its sequence
        number (1) is far below the pre-crash one.
        """
        return DeltaEmitter(
            refresh_every=self.refresh_every, incarnation=self.incarnation + 1
        )


@dataclass
class DeltaAssembler:
    """Receiver-side stream reassembly with stale/gap rejection.

    Stream heads are ``(incarnation, seq)`` pairs: announcements from an
    older incarnation are stale, and within one incarnation the plain
    sequence rules apply. A *newer* incarnation re-anchors the stream at
    its first full snapshot — without this, a sender that crashed and
    restarted with wiped state (sequence numbers back at 1) would be
    rejected as stale by every receiver that saw its pre-crash
    announcements, freezing their view of that stream forever.
    """

    _heads: Dict[StreamId, Tuple[int, int]] = field(default_factory=dict)
    _sets: Dict[StreamId, FrozenSet[ServiceName]] = field(default_factory=dict)
    #: announcements ignored because their sequence was not newer
    stale: int = 0
    #: deltas ignored because an earlier announcement was missed
    gaps: int = 0
    #: announcements applied successfully
    applied: int = 0

    def current(self, stream: StreamId) -> Optional[FrozenSet[ServiceName]]:
        """The last reconstructed set for *stream* (None if never anchored).

        Lets a forwarder keep re-announcing its latest knowledge even when
        an incoming announcement was ignored — each hop's refresh cadence
        stays independent instead of gaps compounding across hops.
        """
        return self._sets.get(stream)

    def apply(
        self, stream: StreamId, announcement: Announcement
    ) -> Optional[FrozenSet[ServiceName]]:
        """Apply *announcement*; the stream's reconstructed set, or None.

        None means the announcement was ignored: stale (an older
        incarnation, or an old sequence within the current one) or a gap
        (a delta whose base this assembler never saw). A gapped stream
        stays ignored until the next full snapshot re-anchors it — the
        sequence pointer is deliberately not advanced past a gap.
        """
        last_inc, last_seq = self._heads.get(stream, (-1, 0))
        if announcement.incarnation < last_inc or (
            announcement.incarnation == last_inc and announcement.seq <= last_seq
        ):
            self.stale += 1
            return None
        if announcement.is_full:
            self._heads[stream] = (announcement.incarnation, announcement.seq)
            value = announcement.full
            assert value is not None
            self._sets[stream] = value
            self.applied += 1
            return value
        base = self._sets.get(stream)
        if (
            base is None
            or announcement.incarnation != last_inc
            or announcement.seq != last_seq + 1
        ):
            # a delta from a newer incarnation has no base here either —
            # wait for that incarnation's full snapshot to re-anchor
            self.gaps += 1
            return None
        value = (base - announcement.removed) | announcement.added
        self._heads[stream] = (last_inc, announcement.seq)
        self._sets[stream] = value
        self.applied += 1
        return value


# -- per-level aggregate streams ----------------------------------------------
#
# A recursive hierarchy announces one capability stream per (level, group):
# level 1 streams carry cluster aggregates, level k >= 2 streams carry the
# aggregate-of-aggregates of that level's groups. The stream id is the
# only convention — emitters and assemblers are the plain classes above,
# so per-level streams inherit the full delta/refresh/incarnation
# semantics without any new protocol machinery.


def aggregate_stream(level: int, group: int) -> StreamId:
    """The stream id of one hierarchy level's group aggregate."""
    return ("agg", int(level), int(group))


def announce_aggregates(
    emitter: DeltaEmitter,
    aggregates: Dict[Tuple[int, int], FrozenSet[ServiceName]],
) -> Dict[StreamId, Announcement]:
    """Announce every ``(level, group) -> capability set`` on its stream.

    Streams are announced in sorted ``(level, group)`` order so repeated
    calls with the same emitter stay deterministic.
    """
    return {
        aggregate_stream(level, group): emitter.announce(
            aggregate_stream(level, group), services
        )
        for (level, group), services in sorted(aggregates.items())
    }


def assemble_aggregates(
    assembler: DeltaAssembler,
    announcements: Dict[StreamId, Announcement],
) -> Dict[Tuple[int, int], FrozenSet[ServiceName]]:
    """Apply per-level announcements; the reconstructed aggregate view.

    Ignored announcements (stale/gap) fall back to the assembler's last
    reconstructed set for that stream, mirroring how a forwarder keeps
    serving its latest knowledge; streams never anchored are absent.
    """
    out: Dict[Tuple[int, int], FrozenSet[ServiceName]] = {}
    for stream, announcement in announcements.items():
        value = assembler.apply(stream, announcement)
        if value is None:
            value = assembler.current(stream)
        if value is not None:
            out[(int(stream[1]), int(stream[2]))] = value  # type: ignore[arg-type]
    return out
