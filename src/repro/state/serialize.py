"""JSON-ready serialisers for the state plane (tables + delta streams).

``repro.persistence`` snapshots capture more than the overlay structure:
PR 5's crash/restart scenarios want a proxy to come back *warm* — its
learned SCT tables and reassembled delta streams intact — instead of
re-filling everything through periodic refreshes. These helpers turn the
state-plane objects (:class:`~repro.state.tables.ServiceCapabilityTable`,
:class:`~repro.state.delta.DeltaEmitter` /
:class:`~repro.state.delta.DeltaAssembler`) into JSON-ready dicts and
back, **exactly** — revisions, timestamps, sequence heads, and counters
round-trip unchanged, so a restored proxy's capability feeds resume at
the same revision they were saved at.

This module deliberately imports only ``state.tables`` / ``state.delta``:
``core.framework`` imports ``state.protocol`` and ``persistence`` imports
``core.framework``, so the serialisers must sit below the protocol to
stay cycle-free (the protocol's ``snapshot_proxy`` / ``restore_state``
build on them).

Keys are heterogeneous (proxy ids, cluster ids, tuple stream ids), so
they go through :func:`encode_key` / :func:`decode_key`, which wrap
tuples recursively — JSON has no tuple type and stream identities must
survive hashing-equal.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

from repro.state.delta import DeltaAssembler, DeltaEmitter
from repro.state.tables import ProxyState, ServiceCapabilityTable, _Entry
from repro.util.errors import StateError


def encode_key(key: Hashable) -> Any:
    """A JSON-ready encoding of a table/stream key (tuples wrapped)."""
    if isinstance(key, tuple):
        return {"tuple": [encode_key(k) for k in key]}
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    raise StateError(f"cannot serialise key of type {type(key).__name__}")


def decode_key(obj: Any) -> Hashable:
    """Invert :func:`encode_key`."""
    if isinstance(obj, dict):
        return tuple(decode_key(k) for k in obj["tuple"])
    return obj


# -- capability tables -----------------------------------------------------------


def capability_table_to_dict(table: ServiceCapabilityTable) -> Dict[str, Any]:
    """Serialise a table with its exact revision and per-entry timestamps."""
    return {
        "revision": table.revision,
        "entries": [
            [encode_key(key), sorted(entry.services), entry.updated_at]
            for key, entry in table._entries.items()
        ],
    }


def capability_table_from_dict(payload: Dict[str, Any]) -> ServiceCapabilityTable:
    """Invert :func:`capability_table_to_dict` (revision preserved, not
    recomputed — consumers compare revisions across the save boundary)."""
    table = ServiceCapabilityTable()
    for key, services, updated_at in payload["entries"]:
        table._entries[decode_key(key)] = _Entry(
            services=frozenset(services), updated_at=float(updated_at)
        )
    table.revision = int(payload["revision"])
    return table


def proxy_state_to_dict(state: ProxyState) -> Dict[str, Any]:
    """Serialise one proxy's full table state."""
    return {
        "proxy": encode_key(state.proxy),
        "cluster_id": state.cluster_id,
        "sct_p": capability_table_to_dict(state.sct_p),
        "sct_c": capability_table_to_dict(state.sct_c),
    }


def proxy_state_from_dict(payload: Dict[str, Any]) -> ProxyState:
    """Invert :func:`proxy_state_to_dict`."""
    return ProxyState(
        proxy=decode_key(payload["proxy"]),
        cluster_id=int(payload["cluster_id"]),
        sct_p=capability_table_from_dict(payload["sct_p"]),
        sct_c=capability_table_from_dict(payload["sct_c"]),
    )


# -- delta streams ---------------------------------------------------------------


def emitter_to_dict(emitter: DeltaEmitter) -> Dict[str, Any]:
    """Serialise a sender's per-stream history and sequence numbers."""
    return {
        "refresh_every": emitter.refresh_every,
        "incarnation": emitter.incarnation,
        "last": [
            [encode_key(stream), sorted(services)]
            for stream, services in emitter._last.items()
        ],
        "seq": [
            [encode_key(stream), seq] for stream, seq in emitter._seq.items()
        ],
    }


def emitter_from_dict(payload: Dict[str, Any]) -> DeltaEmitter:
    """Invert :func:`emitter_to_dict` — the emitter resumes mid-stream."""
    emitter = DeltaEmitter(
        refresh_every=int(payload["refresh_every"]),
        incarnation=int(payload["incarnation"]),
    )
    emitter._last = {
        decode_key(stream): frozenset(services)
        for stream, services in payload["last"]
    }
    emitter._seq = {
        decode_key(stream): int(seq) for stream, seq in payload["seq"]
    }
    return emitter


def assembler_to_dict(assembler: DeltaAssembler) -> Dict[str, Any]:
    """Serialise a receiver's stream heads, sets, and counters."""
    return {
        "heads": [
            [encode_key(stream), list(head)]
            for stream, head in assembler._heads.items()
        ],
        "sets": [
            [encode_key(stream), sorted(services)]
            for stream, services in assembler._sets.items()
        ],
        "stale": assembler.stale,
        "gaps": assembler.gaps,
        "applied": assembler.applied,
    }


def assembler_from_dict(payload: Dict[str, Any]) -> DeltaAssembler:
    """Invert :func:`assembler_to_dict`.

    A restored assembler keeps its pre-crash heads: peers that did *not*
    restart continue their incarnations and sequences, so anything the
    proxy missed while down shows up as a gap and re-anchors at the next
    full refresh — exactly the soft-state safety net, but starting from
    the saved sets instead of from nothing.
    """
    assembler = DeltaAssembler()
    assembler._heads = {
        decode_key(stream): (int(head[0]), int(head[1]))
        for stream, head in payload["heads"]
    }
    assembler._sets = {
        decode_key(stream): frozenset(services)
        for stream, services in payload["sets"]
    }
    assembler.stale = int(payload["stale"])
    assembler.gaps = int(payload["gaps"])
    assembler.applied = int(payload["applied"])
    return assembler


__all__: List[str] = [
    "assembler_from_dict",
    "assembler_to_dict",
    "capability_table_from_dict",
    "capability_table_to_dict",
    "decode_key",
    "emitter_from_dict",
    "emitter_to_dict",
    "encode_key",
    "proxy_state_from_dict",
    "proxy_state_to_dict",
]
