"""Node-state overhead accounting (paper Section 6.1, Figure 9).

Overhead is quantified in *node-states*: the number of entries a single
proxy keeps in a given state table, where an entry may describe a single
node or a whole cluster.

* **Flat topology** — every proxy keeps coordinates of all n proxies and
  service capability of all n proxies: n node-states for each table.
* **HFC topology** —

  - coordinates: members of the own cluster **plus** all border proxies in
    the system (borders inside the own cluster are already counted as
    members, so they are not double counted);
  - service capability: members of the own cluster (SCT_P) **plus** one
    aggregate entry per cluster in the system (SCT_C).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId


def flat_node_states(overlay_size: int) -> int:
    """Per-proxy node-states in a flat (single-level) topology."""
    return overlay_size


def coordinates_node_states(hfc: HFCTopology) -> Dict[ProxyId, int]:
    """Per-proxy coordinates-related node-states in the HFC topology."""
    all_borders = set(hfc.all_border_nodes())
    result: Dict[ProxyId, int] = {}
    for cid in range(hfc.cluster_count):
        members = hfc.members(cid)
        member_set = set(members)
        outside_borders = len(all_borders - member_set)
        for proxy in members:
            result[proxy] = len(members) + outside_borders
    return result


def service_node_states(hfc: HFCTopology) -> Dict[ProxyId, int]:
    """Per-proxy service-capability node-states in the HFC topology."""
    result: Dict[ProxyId, int] = {}
    for cid in range(hfc.cluster_count):
        members = hfc.members(cid)
        for proxy in members:
            result[proxy] = len(members) + hfc.cluster_count
    return result


def message_overhead(report) -> Dict[str, object]:
    """Wire-cost accounting of one protocol run (delta vs full visible here).

    Complements the Fig-9 *stored* node-state accounting with the *moved*
    state: delivered sizes per message kind, dropped bytes (messages put
    on the wire but lost to the loss model), and the mean delivered
    message size — the number the delta encoding shrinks.
    """
    mean_size = (
        report.total_size / report.total_messages if report.total_messages else 0.0
    )
    return {
        "mode": report.mode,
        "bytes_by_kind": dict(report.bytes_by_kind),
        "total_messages": report.total_messages,
        "total_size": report.total_size,
        "dropped_bytes": report.dropped_bytes,
        "mean_message_size": mean_size,
    }


def mean_coordinates_overhead(hfc: HFCTopology) -> float:
    """Mean per-proxy coordinates node-states (one Fig. 9(a) point)."""
    return float(np.mean(list(coordinates_node_states(hfc).values())))


def mean_service_overhead(hfc: HFCTopology) -> float:
    """Mean per-proxy service-capability node-states (one Fig. 9(b) point)."""
    return float(np.mean(list(service_node_states(hfc).values())))
