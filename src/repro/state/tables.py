"""Service Capability Tables (paper Section 4).

Each proxy maintains two tables:

* **SCT_P** — per-proxy service capability of every member of its own
  cluster (full local state);
* **SCT_C** — aggregate service capability (set union) of every cluster in
  the system.

The tables record an update timestamp per entry so experiments can measure
staleness and convergence of the distribution protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable

from repro.services.catalog import ServiceName
from repro.util.errors import StateError

ProxyId = Hashable
ClusterId = int


@dataclass
class _Entry:
    services: FrozenSet[ServiceName]
    updated_at: float


@dataclass
class ServiceCapabilityTable:
    """A keyed table of service-capability sets with update timestamps.

    ``revision`` increments on every content change — a cheap monotonic
    version consumers (the routing capability feeds) compare instead of
    diffing table snapshots.
    """

    _entries: Dict[Hashable, _Entry] = field(default_factory=dict)
    revision: int = 0

    def update(
        self, key: Hashable, services: FrozenSet[ServiceName], now: float = 0.0
    ) -> bool:
        """Record *services* for *key*; returns True if the content changed."""
        previous = self._entries.get(key)
        changed = previous is None or previous.services != services
        self._entries[key] = _Entry(services=frozenset(services), updated_at=now)
        if changed:
            self.revision += 1
        return changed

    def remove(self, key: Hashable) -> None:
        """Drop *key*'s entry (no-op if absent)."""
        if self._entries.pop(key, None) is not None:
            self.revision += 1

    def services_of(self, key: Hashable) -> FrozenSet[ServiceName]:
        """The recorded capability set for *key*."""
        try:
            return self._entries[key].services
        except KeyError:
            raise StateError(f"no capability entry for {key!r}") from None

    def updated_at(self, key: Hashable) -> float:
        """When *key*'s entry was last written."""
        try:
            return self._entries[key].updated_at
        except KeyError:
            raise StateError(f"no capability entry for {key!r}") from None

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        """All keys currently present."""
        return self._entries.keys()

    def as_dict(self) -> Dict[Hashable, FrozenSet[ServiceName]]:
        """Snapshot of the table content (keys -> capability sets)."""
        return {k: e.services for k, e in self._entries.items()}


@dataclass
class ProxyState:
    """Everything one proxy knows: its SCT_P, SCT_C, and topology info.

    ``cluster_id`` and the membership/border information correspond to what
    the elected proxy P distributes after clustering (paper Figure 4).
    """

    proxy: ProxyId
    cluster_id: ClusterId
    sct_p: ServiceCapabilityTable = field(default_factory=ServiceCapabilityTable)
    sct_c: ServiceCapabilityTable = field(default_factory=ServiceCapabilityTable)

    def local_capability(self) -> FrozenSet[ServiceName]:
        """This proxy's own service set, as recorded in its SCT_P."""
        return self.sct_p.services_of(self.proxy)

    def aggregate_own_cluster(self) -> FrozenSet[ServiceName]:
        """Union of all known member capabilities — the border proxies'
        aggregation step (Section 4, footnote 5)."""
        union: set = set()
        for key in self.sct_p.keys():
            union |= self.sct_p.services_of(key)
        return frozenset(union)
