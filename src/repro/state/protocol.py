"""The hierarchical state-distribution protocol (paper Section 4), simulated.

Runs the paper's two message flows on the discrete-event engine:

1. **local state**: every proxy periodically sends the names of its own
   services to every member of its cluster; receivers update SCT_P.
2. **aggregate state**: every border proxy periodically unions its cluster's
   SCT_P into an aggregate, sends it over its external link(s) to the
   neighbouring border proxies; a border receiving a remote aggregate
   updates its SCT_C and forwards it into its own cluster; members update
   their SCT_C.

Message latency is the ground-truth delay between the proxies involved, so
convergence time reflects the real overlay geometry. Each message carries an
abstract size (number of service names), feeding the protocol-cost bench.

Forwarding is unconditional: a border re-floods every received remote
aggregate into its own cluster, exactly as the paper's rule reads ("is
responsible for forwarding it to other proxies of its own cluster"). This
costs one intra-cluster flood per neighbour border per aggregate period at
steady state, but it makes the soft-state flow self-healing — a lost
forward is repaired one period later — which the loss-rate tests rely on.

Two wire encodings are supported. ``mode="delta"`` (the default) sends
sequence-numbered :class:`~repro.state.delta.Announcement` payloads — the
symmetric difference since the stream's previous announcement, with a full
snapshot every ``refresh_every`` announcements as the soft-state safety
net; stale or gapped announcements are ignored by the receiver-side
assembler. ``mode="full"`` is the legacy re-flood-everything encoding,
kept as the cost baseline (``benchmarks/bench_churn.py`` measures the
byte savings). Convergence semantics, ground-truth checks, and the
per-proxy table contents are identical in both modes —
``tests/test_delta_state.py`` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Union

from repro.netsim.eventsim import Message, Process, Simulator
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import ProxyId
from repro.services.catalog import ServiceName
from repro.state.delta import Announcement, DeltaAssembler, DeltaEmitter, StreamId
from repro.state.tables import ProxyState
from repro.util.errors import StateError
from repro.util.rng import RngLike, ensure_rng

ClusterId = int

#: what travels in a payload's capability slot, depending on the mode
WireBody = Union[FrozenSet[ServiceName], Announcement]


@dataclass
class ProtocolReport:
    """Cost and convergence summary of a protocol run.

    Derived from the simulator's metrics registry (the engine counts every
    delivery per kind), not from hand-rolled tallies.

    Attributes:
        converged_at: simulated time at which every proxy's tables matched
            ground truth (None if the run ended first).
        messages_by_kind: delivered message counts per kind.
        total_messages: all delivered messages.
        total_size: sum of message sizes (service-name count proxy; in
            delta mode, header + carried names per announcement).
        messages_dropped: messages lost to the configured loss rate.
        delivery_latency: per-kind ``{p50, p95, p99, mean}`` summaries of
            message delivery latency (simulated ms).
        mode: the wire encoding the run used ("delta" or "full").
        dropped_bytes: sizes of the dropped messages (so overhead reports
            can account for bytes put on the wire but never delivered).
        bytes_by_kind: delivered sizes per message kind.
    """

    converged_at: Optional[float]
    messages_by_kind: Dict[str, int]
    total_messages: int
    total_size: int
    messages_dropped: int = 0
    delivery_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    mode: str = "full"
    dropped_bytes: int = 0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump (the CLI's ``protocol --json``)."""
        return {
            "converged_at": self.converged_at,
            "messages_by_kind": dict(self.messages_by_kind),
            "total_messages": self.total_messages,
            "total_size": self.total_size,
            "messages_dropped": self.messages_dropped,
            "delivery_latency": {
                kind: dict(summary)
                for kind, summary in self.delivery_latency.items()
            },
            "mode": self.mode,
            "dropped_bytes": self.dropped_bytes,
            "bytes_by_kind": dict(self.bytes_by_kind),
        }


class _ProxyAgent(Process):
    """One proxy participating in the state-distribution protocol."""

    def __init__(
        self,
        proxy: ProxyId,
        protocol: "StateDistributionProtocol",
    ) -> None:
        super().__init__(address=proxy)
        self.proxy = proxy
        self.protocol = protocol
        self.state = protocol.states[proxy]
        # Draw the start-up phase jitters at construction time, not in
        # :meth:`start`: construction order equals registration order equals
        # time-0 start order, so the values are identical to drawing them
        # lazily — but precomputing makes them independent of how start
        # events interleave, which the sharded engine relies on for
        # shard-count-invariant runs.
        rng = protocol._rng
        self._local_jitter = rng.uniform(0.0, protocol.local_period * 0.2)
        self._aggregate_jitter: Optional[float] = (
            rng.uniform(0.0, protocol.aggregate_period * 0.2)
            if protocol.border_peers.get(proxy)
            else None
        )
        if protocol.delta:
            self.emitter: Optional[DeltaEmitter] = DeltaEmitter(
                refresh_every=protocol.refresh_every
            )
            self.assembler: Optional[DeltaAssembler] = DeltaAssembler()
        else:
            self.emitter = None
            self.assembler = None

    def send(self, recipient, kind, payload, delay, size=1) -> None:
        # model in-transit loss: a dropped message never reaches the heap,
        # but its bytes were spent — account them as dropped
        if self.protocol.should_drop(size):
            return
        super().send(recipient, kind, payload, delay, size)

    # -- wire encoding --------------------------------------------------------

    def _encode(
        self, stream: StreamId, services: FrozenSet[ServiceName]
    ) -> "tuple[WireBody, int]":
        """The body + abstract size to put on the wire for *services*."""
        if self.emitter is None:
            return services, len(services)
        announcement = self.emitter.announce(stream, services)
        self.protocol.count_announcement(announcement)
        return announcement, announcement.wire_size

    def _decode(
        self, stream: StreamId, body: WireBody
    ) -> Optional[FrozenSet[ServiceName]]:
        """The capability set carried by *body*, or None if it was ignored."""
        if self.assembler is None:
            assert isinstance(body, frozenset)
            return body
        assert isinstance(body, Announcement)
        stale_before = self.assembler.stale
        value = self.assembler.apply(stream, body)
        if value is None:
            reason = "stale" if self.assembler.stale > stale_before else "gap"
            self.protocol.count_ignored(reason)
        return value

    # -- behaviour ------------------------------------------------------------

    def start(self) -> None:
        sim = self.simulator
        assert sim is not None
        sim.schedule_every(
            self.protocol.local_period,
            self._broadcast_local,
            first_delay=self._local_jitter,
            owner=self.address,
        )
        if self._aggregate_jitter is not None:
            sim.schedule_every(
                self.protocol.aggregate_period,
                self._broadcast_aggregate,
                # The first aggregate only makes sense once local state had a
                # chance to spread; start after one local period.
                first_delay=self.protocol.local_period + self._aggregate_jitter,
                owner=self.address,
            )

    def _broadcast_local(self) -> None:
        services = self.state.local_capability()
        body, size = self._encode(("local",), services)
        for member in self.protocol.cluster_members[self.state.cluster_id]:
            if member == self.proxy:
                continue
            self.send(
                member,
                "local_state",
                (self.proxy, body),
                delay=self.protocol.delay(self.proxy, member),
                size=size,
            )

    def _broadcast_aggregate(self) -> None:
        aggregate = self.state.aggregate_own_cluster()
        body, size = self._encode(("aggregate",), aggregate)
        for peer in self.protocol.border_peers[self.proxy]:
            self.send(
                peer,
                "aggregate_state",
                (self.state.cluster_id, body),
                delay=self.protocol.delay(self.proxy, peer),
                size=size,
            )

    def receive(self, message: Message) -> None:
        sim = self.simulator
        assert sim is not None
        if message.kind == "local_state":
            sender, body = message.payload
            services = self._decode(("local", sender), body)
            if services is None:
                return
            self.state.sct_p.update(sender, services, now=sim.now)
            self.state.sct_c.update(
                self.state.cluster_id, self.state.aggregate_own_cluster(), now=sim.now
            )
        elif message.kind in ("aggregate_state", "aggregate_forward"):
            cluster, body = message.payload
            flow = "aggregate" if message.kind == "aggregate_state" else "forward"
            stream = (flow, message.sender, cluster)
            services = self._decode(stream, body)
            if services is not None:
                self.state.sct_c.update(cluster, services, now=sim.now)
            elif message.kind == "aggregate_state" and self.assembler is not None:
                # The announcement was ignored (stale or gapped), but a
                # border must keep re-flooding its latest knowledge so each
                # hop's full-refresh cadence heals independently — gaps must
                # not compound across the aggregate -> forward chain.
                services = self.assembler.current(stream)
            if services is None:
                return
            # Forward every received aggregate into the own cluster (the
            # paper's rule). Unconditional forwarding makes the soft-state
            # flow self-healing: a lost forward is repaired one aggregate
            # period later when the peer border re-sends.
            if message.kind == "aggregate_state":
                fwd_body, fwd_size = self._encode(("forward", cluster), services)
                for member in self.protocol.cluster_members[self.state.cluster_id]:
                    if member == self.proxy:
                        continue
                    self.send(
                        member,
                        "aggregate_forward",
                        (cluster, fwd_body),
                        delay=self.protocol.delay(self.proxy, member),
                        size=fwd_size,
                    )
        else:
            raise StateError(f"unknown message kind {message.kind!r}")


class ProtocolCapabilityFeed:
    """A versioned SCT_C view over a running protocol (feed contract).

    ``version`` is the observer proxy's SCT_C revision counter — it
    advances exactly when the observed table content changes, so routers
    bound to this feed refresh (and drop their caches) precisely when the
    protocol learned something new. Duck-typed against
    :class:`repro.core.versioning.CapabilityFeed`.
    """

    def __init__(self, protocol: "StateDistributionProtocol") -> None:
        self._protocol = protocol
        self._observer = protocol.states[protocol.hfc.overlay.proxies[0]]

    @property
    def version(self) -> int:
        return self._observer.sct_c.revision

    def capabilities(self) -> Dict[ClusterId, FrozenSet[ServiceName]]:
        return self._protocol.capabilities_for_routing()


class StateDistributionProtocol:
    """Drives the Section-4 protocol over an HFC topology."""

    def __init__(
        self,
        hfc: HFCTopology,
        *,
        local_period: float = 500.0,
        aggregate_period: float = 1000.0,
        loss_rate: float = 0.0,
        seed: RngLike = None,
        telemetry=None,
        mode: str = "delta",
        refresh_every: int = 4,
        sim: Optional[Simulator] = None,
    ) -> None:
        if local_period <= 0 or aggregate_period <= 0:
            raise StateError("protocol periods must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise StateError("loss_rate must be in [0, 1)")
        if mode not in ("delta", "full"):
            raise StateError(f"mode must be 'delta' or 'full', got {mode!r}")
        if refresh_every < 1:
            raise StateError(f"refresh_every must be >= 1, got {refresh_every}")
        self.hfc = hfc
        self.local_period = local_period
        self.aggregate_period = aggregate_period
        #: probability that any single protocol message is silently dropped;
        #: the periodic soft-state design must converge regardless
        self.loss_rate = loss_rate
        #: wire encoding: "delta" (sequence-numbered diffs + K-period full
        #: refresh) or "full" (the legacy re-flood-everything baseline)
        self.mode = mode
        self.delta = mode == "delta"
        #: every K-th announcement per stream is a full snapshot
        self.refresh_every = refresh_every
        self._rng = ensure_rng(seed)
        # An injected simulator (e.g. a ShardedSimulator) brings its own
        # telemetry scope; the protocol only creates one when it owns the sim.
        self.sim = sim if sim is not None else Simulator(telemetry=telemetry)
        registry = self.sim.telemetry.registry
        self._dropped = registry.counter("protocol.messages.dropped")
        self._dropped_bytes = registry.counter("protocol.dropped_bytes")
        self._announced_full = registry.counter(
            "protocol.announcements", kind="full"
        )
        self._announced_delta = registry.counter(
            "protocol.announcements", kind="delta"
        )

        self.cluster_members: Dict[ClusterId, List[ProxyId]] = {
            cid: list(hfc.members(cid)) for cid in range(hfc.cluster_count)
        }
        # border proxy -> the remote border proxies it exchanges aggregates with
        self.border_peers: Dict[ProxyId, List[ProxyId]] = {
            p: [] for p in hfc.overlay.proxies
        }
        for (i, j), border in hfc.borders.items():
            self.border_peers[border].append(hfc.borders[(j, i)])

        # Initial knowledge: every proxy knows its own services (and therefore
        # a provisional aggregate of its own cluster = just itself).
        self.states: Dict[ProxyId, ProxyState] = {}
        for proxy in hfc.overlay.proxies:
            state = ProxyState(proxy=proxy, cluster_id=hfc.cluster_of(proxy))
            state.sct_p.update(proxy, hfc.overlay.placement[proxy], now=0.0)
            state.sct_c.update(state.cluster_id, hfc.overlay.placement[proxy], now=0.0)
            self.states[proxy] = state

        self._agents: List[_ProxyAgent] = []
        self._agent_of: Dict[ProxyId, _ProxyAgent] = {}
        for proxy in hfc.overlay.proxies:
            agent = _ProxyAgent(proxy, self)
            self._agents.append(agent)
            self._agent_of[proxy] = agent
            self.sim.register(agent)

    # -- plumbing ---------------------------------------------------------------

    def delay(self, u: ProxyId, v: ProxyId) -> float:
        """Message latency between two proxies (ground-truth delay)."""
        return self.hfc.overlay.true_delay(u, v)

    @property
    def messages_dropped(self) -> int:
        """Messages lost to the configured loss rate so far."""
        return self._dropped.value

    @property
    def dropped_bytes(self) -> int:
        """Total abstract size of the messages lost to the loss rate."""
        return self._dropped_bytes.value

    def should_drop(self, size: int = 1) -> bool:
        """Bernoulli(loss_rate) draw; counts drops (and their bytes)."""
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self._dropped.inc()
            self._dropped_bytes.inc(size)
            return True
        return False

    def count_announcement(self, announcement: Announcement) -> None:
        """Tally a delta-mode announcement by kind (full vs delta)."""
        if announcement.is_full:
            self._announced_full.inc()
        else:
            self._announced_delta.inc()

    def count_ignored(self, reason: str) -> None:
        """Tally a receiver-side ignored announcement (stale or gap)."""
        self.sim.telemetry.registry.counter(
            "protocol.delta.ignored", reason=reason
        ).inc()

    def delta_stats(self) -> Dict[str, int]:
        """Aggregate assembler statistics across all proxies (delta mode)."""
        stats = {"applied": 0, "stale": 0, "gaps": 0}
        for agent in self._agents:
            if agent.assembler is not None:
                stats["applied"] += agent.assembler.applied
                stats["stale"] += agent.assembler.stale
                stats["gaps"] += agent.assembler.gaps
        return stats

    # -- dynamics ----------------------------------------------------------------

    def update_local_services(self, proxy: ProxyId, services) -> None:
        """Change the services installed on *proxy* mid-run.

        Updates the ground truth (the overlay placement) and the proxy's own
        SCT_P entry; the change then propagates through the normal periodic
        local-state and aggregate-state flows — re-convergence time is the
        interesting measurement. In delta mode the next announcements carry
        exactly the add/remove difference.
        """
        if proxy not in self.states:
            raise StateError(f"unknown proxy {proxy!r}")
        services = frozenset(services)
        self.hfc.overlay.placement[proxy] = services
        state = self.states[proxy]
        state.sct_p.update(proxy, services, now=self.sim.now)
        state.sct_c.update(
            state.cluster_id, state.aggregate_own_cluster(), now=self.sim.now
        )

    def wipe_state(self, proxy: ProxyId, *, services=None) -> None:
        """Crash/restart *proxy* with a state wipe.

        The restarted proxy forgets everything it learned: its SCT_P and
        SCT_C shrink back to self-knowledge (exactly the initial state),
        and in delta mode its emitter restarts under the next incarnation
        while its assembler comes back empty. Everything re-fills through
        the normal periodic flows — the fault-injection suite measures how
        long that takes.

        Pass *services* to model the proxy coming back with a different
        service set (ground truth is updated like
        :meth:`update_local_services`); by default it restarts with the
        services it had.
        """
        agent = self._agent_of.get(proxy)
        if agent is None:
            raise StateError(f"unknown proxy {proxy!r}")
        placement = self.hfc.overlay.placement
        if services is not None:
            placement[proxy] = frozenset(services)
        now = self.sim.now
        state = ProxyState(proxy=proxy, cluster_id=self.hfc.cluster_of(proxy))
        state.sct_p.update(proxy, placement[proxy], now=now)
        state.sct_c.update(state.cluster_id, placement[proxy], now=now)
        self.states[proxy] = state
        agent.state = state
        if agent.emitter is not None:
            # the incarnation bump is the restart's only surviving memory;
            # without it peers would reject the fresh streams as stale
            agent.emitter = agent.emitter.restart()
            agent.assembler = DeltaAssembler()
        self.sim.telemetry.registry.counter("protocol.restarts").inc()

    def remove_proxy(self, proxy: ProxyId) -> None:
        """Permanently remove *proxy* from the protocol and the simulator.

        The agent is deregistered (in-flight messages to it become counted
        drops, its periodic broadcasts stop re-arming), and the membership
        structures forget it so ground truth and peer fan-outs shrink.
        Soft-state entries other proxies already hold about it age out
        through the normal refresh flows — removal is a lifecycle operation,
        not a retraction broadcast.
        """
        agent = self._agent_of.pop(proxy, None)
        if agent is None:
            raise StateError(f"unknown proxy {proxy!r}")
        self._agents.remove(agent)
        state = self.states.pop(proxy)
        members = self.cluster_members.get(state.cluster_id)
        if members is not None and proxy in members:
            members.remove(proxy)
        self.border_peers.pop(proxy, None)
        for peers in self.border_peers.values():
            while proxy in peers:
                peers.remove(proxy)
        if self.sim.is_registered(proxy):
            self.sim.deregister(proxy)
        self.sim.telemetry.registry.counter("protocol.departures").inc()

    def track_membership(self, overlay) -> Callable[..., None]:
        """Subscribe to a :class:`DynamicOverlay`-style change notifier.

        ``leave`` events call :meth:`remove_proxy` for proxies this protocol
        still tracks, so sustained churn no longer grows the simulator's
        process registry or crashes on in-flight messages to departed
        proxies. Returns the subscribed callback (for unsubscription).
        """

        def _on_change(version: int, **info: object) -> None:
            proxy = info.get("proxy")
            if info.get("kind") == "leave" and proxy in self._agent_of:
                self.remove_proxy(proxy)  # type: ignore[arg-type]

        return overlay.notifier.subscribe(_on_change)

    def snapshot_proxy(self, proxy: ProxyId) -> Dict[str, object]:
        """A JSON-ready capture of everything *proxy* knows right now.

        Covers the proxy's SCT tables (with exact revisions and
        timestamps) and, in delta mode, its emitter history and assembler
        streams. Feed the result to :meth:`restore_state` for a warm
        restart, or to ``repro.persistence.save_snapshot`` via
        :meth:`snapshot_state_plane` to persist it.
        """
        from repro.state.serialize import (
            assembler_to_dict,
            emitter_to_dict,
            proxy_state_to_dict,
        )

        agent = self._agent_of.get(proxy)
        if agent is None:
            raise StateError(f"unknown proxy {proxy!r}")
        snapshot: Dict[str, object] = {
            "state": proxy_state_to_dict(self.states[proxy]),
        }
        if agent.emitter is not None and agent.assembler is not None:
            snapshot["emitter"] = emitter_to_dict(agent.emitter)
            snapshot["assembler"] = assembler_to_dict(agent.assembler)
        return snapshot

    def snapshot_state_plane(self) -> Dict[str, object]:
        """Per-proxy :meth:`snapshot_proxy` captures for every proxy.

        The shape ``repro.persistence.save_snapshot`` accepts as its
        ``state_plane`` argument (keys are proxy ids as strings — the
        capture is JSON all the way down).
        """
        return {
            str(proxy): self.snapshot_proxy(proxy)
            for proxy in self.hfc.overlay.proxies
        }

    def restore_state(
        self, proxy: ProxyId, snapshot: Dict[str, object], *, services=None
    ) -> None:
        """Warm-restart *proxy* from a :meth:`snapshot_proxy` capture.

        The warm path restores the learned SCT tables and the assembler's
        reassembled streams — routing-relevant knowledge survives the
        crash — then refreshes the proxy's *own* entries against current
        ground truth (pass *services* if it came back with a different
        service set). The emitter does **not** resume mid-stream: its
        incarnation bumps past both the saved and the current one, so
        peers that saw pre-crash announcements accept the fresh streams
        (same invariant as :meth:`wipe_state`); announcements produced
        while the proxy was down appear to it as gaps and re-anchor at
        the next full refresh.
        """
        from repro.state.serialize import (
            assembler_from_dict,
            proxy_state_from_dict,
        )

        agent = self._agent_of.get(proxy)
        if agent is None:
            raise StateError(f"unknown proxy {proxy!r}")
        placement = self.hfc.overlay.placement
        if services is not None:
            placement[proxy] = frozenset(services)
        now = self.sim.now
        state = proxy_state_from_dict(snapshot["state"])  # type: ignore[arg-type]
        if state.proxy != proxy:
            raise StateError(
                f"snapshot belongs to proxy {state.proxy!r}, not {proxy!r}"
            )
        state.cluster_id = self.hfc.cluster_of(proxy)
        state.sct_p.update(proxy, placement[proxy], now=now)
        state.sct_c.update(
            state.cluster_id, state.aggregate_own_cluster(), now=now
        )
        self.states[proxy] = state
        agent.state = state
        if agent.emitter is not None:
            saved = snapshot.get("emitter") or {}
            saved_incarnation = int(saved.get("incarnation", 0))  # type: ignore[union-attr]
            agent.emitter = DeltaEmitter(
                refresh_every=agent.emitter.refresh_every,
                incarnation=max(saved_incarnation, agent.emitter.incarnation) + 1,
            )
            assembler_payload = snapshot.get("assembler")
            agent.assembler = (
                assembler_from_dict(assembler_payload)  # type: ignore[arg-type]
                if assembler_payload is not None
                else DeltaAssembler()
            )
        registry = self.sim.telemetry.registry
        registry.counter("protocol.restarts").inc()
        registry.counter("protocol.restarts.warm").inc()

    @property
    def refresh_period(self) -> float:
        """Simulated time between full-snapshot refreshes of the aggregate
        flow — the unit the convergence auditor's K budget is expressed in.
        """
        return self.refresh_every * self.aggregate_period

    # -- ground truth and convergence -----------------------------------------------

    def ground_truth_sct_p(self, proxy: ProxyId) -> Dict[ProxyId, FrozenSet[ServiceName]]:
        """What *proxy*'s SCT_P should contain once converged."""
        cid = self.hfc.cluster_of(proxy)
        placement = self.hfc.overlay.placement
        return {m: placement[m] for m in self.cluster_members[cid]}

    def ground_truth_sct_c(self) -> Dict[ClusterId, FrozenSet[ServiceName]]:
        """What every SCT_C should contain once converged."""
        placement = self.hfc.overlay.placement
        result: Dict[ClusterId, FrozenSet[ServiceName]] = {}
        for cid, members in self.cluster_members.items():
            union: set = set()
            for m in members:
                union |= placement[m]
            result[cid] = frozenset(union)
        return result

    def converged(self) -> bool:
        """True if every proxy's SCT_P and SCT_C match ground truth."""
        truth_c = self.ground_truth_sct_c()
        for proxy, state in self.states.items():
            if state.sct_p.as_dict() != self.ground_truth_sct_p(proxy):
                return False
            if state.sct_c.as_dict() != truth_c:
                return False
        return True

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        max_time: float = 20000.0,
        *,
        check_interval: float = 250.0,
        stop_on_convergence: bool = True,
    ) -> ProtocolReport:
        """Run the protocol until convergence (or *max_time*).

        Convergence is checked every *check_interval* simulated units; the
        reported ``converged_at`` is therefore an upper bound within one
        interval of the true instant.
        """
        converged_at: Optional[float] = None
        t = 0.0
        while t < max_time:
            t = min(t + check_interval, max_time)
            self.sim.run_until(t)
            if converged_at is None and self.converged():
                converged_at = self.sim.now
                if stop_on_convergence:
                    break
        registry = self.sim.telemetry.registry
        latency_summaries: Dict[str, Dict[str, float]] = {}
        for hist in registry.collect("sim.delivery.latency"):
            if hist.count:
                kind = dict(hist.labels)["kind"]
                latency_summaries[kind] = {
                    "p50": hist.quantile(0.50),
                    "p95": hist.quantile(0.95),
                    "p99": hist.quantile(0.99),
                    "mean": hist.mean,
                }
        return ProtocolReport(
            converged_at=converged_at,
            messages_by_kind=registry.values_by_label(
                "sim.messages.delivered", "kind"
            ),
            total_messages=self.sim.messages_delivered,
            total_size=self.sim.bytes_delivered,
            messages_dropped=self.messages_dropped,
            delivery_latency=latency_summaries,
            mode=self.mode,
            dropped_bytes=self.dropped_bytes,
            bytes_by_kind=registry.values_by_label("sim.bytes.delivered", "kind"),
        )

    def capabilities_for_routing(self) -> Dict[ClusterId, FrozenSet[ServiceName]]:
        """A destination proxy's current SCT_C view, usable by the router.

        Picks an arbitrary fixed proxy (the first overlay proxy) as the
        observer; useful for wiring possibly-stale protocol state into
        :class:`~repro.routing.hierarchical.HierarchicalRouter`.
        """
        observer = self.states[self.hfc.overlay.proxies[0]]
        return {
            cid: observer.sct_c.services_of(cid)
            for cid in range(self.hfc.cluster_count)
            if cid in observer.sct_c
        }

    def capability_feed(self) -> ProtocolCapabilityFeed:
        """A versioned feed over :meth:`capabilities_for_routing`.

        Bind it to a router (``capability_feed=...``) and the router
        refreshes — invalidating any cached answers — exactly when the
        observer's SCT_C content changes.
        """
        return ProtocolCapabilityFeed(self)
