"""Dynamic membership extension (paper Section 7 future work)."""

from repro.membership.churn import ChurnEvent, DynamicOverlay, run_churn_session

__all__ = ["ChurnEvent", "DynamicOverlay", "run_churn_session"]
