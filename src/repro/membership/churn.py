"""Dynamic membership — the paper's first future-work item (Section 7).

"While we can let future proxies join clusters of their nearest neighbors,
multiple joins and leaves may deteriorate the quality of clustering. Hence
some kind of re-structuring mechanism needs to be devised."

This module implements exactly that design, *incrementally*:

* **join**: a new proxy measures its delays to the landmarks, derives its
  coordinates (the Section 3.1 machinery), and joins the cluster of its
  geometrically nearest existing proxy;
* **leave**: a proxy is removed; border pairs it served are re-selected;
* **quality tracking**: clustering quality (separation ratio) is monitored
  against the quality a fresh re-clustering would achieve;
* **restructuring**: when quality degrades beyond a configurable tolerance,
  the overlay re-clusters from scratch (the elected proxy P re-runs
  Section 3.2/3.3).

A join or leave touches exactly one cluster, so the default
``incremental=True`` mode patches the overlay in place: the affected
cluster's member list and coordinate block are rebuilt (O(cluster)), and
border selection re-runs only for the k-1 cluster pairs involving that
cluster (:func:`repro.overlay.hfc.patch_borders_for_cluster`), using the
same blocked closest-pair kernel as the full scan. Full reconstruction is
reserved for :meth:`DynamicOverlay.restructure` (and for
``incremental=False``, the legacy rebuild-the-world mode kept as the
benchmark baseline). The derived ``space`` / ``clustering`` / ``overlay``
/ ``hfc`` objects are materialised lazily on first access after a change,
so a burst of churn events does not pay O(n) per event for views nobody
reads. ``tests/test_incremental_equivalence.py`` proves both modes
produce identical topologies after every event.

Every event advances :attr:`DynamicOverlay.version` (an
:class:`~repro.core.versioning.OverlayVersion`: restructures bump the
epoch, joins/leaves the step) and fires :attr:`DynamicOverlay.notifier`,
which is how the state and routing layers learn that their capability
views are out of date.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cluster.mstcluster import Clustering, ClusteringConfig, cluster_nodes
from repro.cluster.quality import separation_ratio
from repro.coords.embedding import locate_host
from repro.coords.space import CoordinateSpace
from repro.core.framework import HFCFramework
from repro.core.versioning import ChangeNotifier, OverlayVersion
from repro.overlay.hfc import (
    HFCTopology,
    closest_cross_pair,
    drop_cluster_from_borders,
    patch_borders_for_cluster,
)
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.services.catalog import ServiceName
from repro.telemetry import Telemetry, get_telemetry
from repro.util.errors import ClusteringError, MembershipError
from repro.util.rng import RngLike, ensure_rng

import numpy as np


@dataclass
class ChurnEvent:
    """A recorded membership change."""

    kind: str  # "join" | "leave" | "restructure"
    proxy: Optional[ProxyId]
    cluster: Optional[int]
    #: quality after the event; None when quality tracking is disabled
    quality_after: Optional[float]


@dataclass
class DynamicOverlay:
    """A mutable view over an HFC overlay that supports joins and leaves.

    Wraps a built :class:`HFCFramework`; every mutation leaves a
    consistent (overlay, clustering, HFC) triple reachable through
    :attr:`overlay`, :attr:`clustering` and :attr:`hfc` — materialised
    lazily from the patched internal state. The wrapped framework itself
    is never mutated.
    """

    framework: HFCFramework
    #: re-cluster automatically when quality drops below
    #: ``restructure_tolerance * fresh_quality`` (None disables)
    restructure_tolerance: Optional[float] = 0.7
    history: List[ChurnEvent] = field(default_factory=list)
    #: observability scope (default: the process-wide one)
    telemetry: Optional[Telemetry] = None
    #: patch the topology per event (default) instead of rebuilding it
    incremental: bool = True
    #: compute the separation ratio after every event (O(n²/k)); disable
    #: for throughput-sensitive churn driving
    track_quality: bool = True

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = get_telemetry()
        fw = self.framework
        # Columnar coordinate storage: one growing (capacity, k) float64
        # array plus proxy -> row and a free-row list. Blocks and space
        # views gather rows from this array, so a churn session maintains
        # one coordinate buffer instead of a dict of per-proxy tuples
        # (same floats either way — fw.space hands out exact float64).
        proxies = list(fw.overlay.proxies)
        self._coord_arr: np.ndarray = np.ascontiguousarray(
            fw.space.array(proxies), dtype=float
        )
        self._coord_row: Dict[ProxyId, int] = {
            p: i for i, p in enumerate(proxies)
        }
        self._free_rows: List[int] = []
        self._placement: Dict[ProxyId, FrozenSet[ServiceName]] = dict(
            fw.overlay.placement
        )
        self._cluster_config: ClusteringConfig = fw.config.clustering
        self.version = OverlayVersion()
        self.notifier = ChangeNotifier()
        self._adopt_labels(dict(fw.clustering.labels))
        self._refresh_borders()
        self._invalidate_views()

    # -- views ---------------------------------------------------------------

    @property
    def proxies(self) -> List[ProxyId]:
        """Current proxy population."""
        return list(self._labels)

    @property
    def size(self) -> int:
        """Current overlay size."""
        return len(self._labels)

    def __contains__(self, proxy: ProxyId) -> bool:
        return proxy in self._labels

    def is_member(self, proxy: ProxyId) -> bool:
        """Whether *proxy* is currently part of the overlay (O(1))."""
        return proxy in self._labels

    @property
    def space(self) -> CoordinateSpace:
        """The current coordinate space (materialised lazily)."""
        if self._space_view is None:
            proxies = list(self._labels)
            rows = [self._coord_row[p] for p in proxies]
            self._space_view = CoordinateSpace.from_stacked(
                proxies, self._coord_arr[rows]
            )
        return self._space_view

    @property
    def clustering(self) -> Clustering:
        """The current clustering (materialised lazily)."""
        if self._clustering_view is None:
            self._clustering_view = Clustering(
                clusters=[list(c) for c in self._clusters],
                labels=dict(self._labels),
            )
        return self._clustering_view

    @property
    def overlay(self) -> OverlayNetwork:
        """The current overlay network (materialised lazily)."""
        if self._overlay_view is None:
            proxies = list(self._labels)
            self._overlay_view = OverlayNetwork(
                physical=self.framework.physical,
                proxies=proxies,
                placement={p: self._placement[p] for p in proxies},
                space=self.space,
            )
        return self._overlay_view

    @property
    def hfc(self) -> HFCTopology:
        """The current HFC topology (materialised lazily)."""
        if self._hfc_view is None:
            self._hfc_view = HFCTopology(
                overlay=self.overlay,
                clustering=self.clustering,
                space=self.space,
                borders=dict(self._borders),
            )
        return self._hfc_view

    def columnar(self):
        """The current overlay state as one struct-of-arrays snapshot.

        Builds a :class:`~repro.state.columnar.ColumnarOverlayState` from
        the live membership state (stamped with :attr:`version`), which is
        what ``repro.persistence.save_snapshot`` serialises — a consistent
        point-in-time capture, decoupled from later churn.
        """
        from repro.state.columnar import ColumnarOverlayState

        proxies = list(self._labels)
        return ColumnarOverlayState.from_parts(
            proxies=proxies,
            space=self.space,
            clustering=self.clustering,
            borders=self._borders,
            placement={p: self._placement[p] for p in proxies},
            version=self.version,
        )

    @classmethod
    def from_snapshot(cls, snapshot, **kwargs) -> "DynamicOverlay":
        """Warm-start a dynamic overlay from a loaded snapshot.

        *snapshot* is a ``repro.persistence.OverlaySnapshot``; the restored
        framework skips re-embedding and re-clustering (the dominant cost
        of a cold build), and the overlay resumes at the snapshot's
        :class:`~repro.core.versioning.OverlayVersion` so version-driven
        consumers (router caches, capability feeds) keep their ordering.
        """
        dyn = cls(snapshot.framework, **kwargs)
        dyn.version = snapshot.version
        return dyn

    # -- mutations --------------------------------------------------------------

    def locate(self, router: int, *, probes: int = 3) -> Tuple[float, ...]:
        """Coordinates for physical *router* from landmark measurements.

        Uses the landmark-side batched measurement path, so a join costs
        one cached Dijkstra per landmark instead of one from the joining
        router.
        """
        fw = self.framework
        landmarks = fw.embedding_report.landmark_ids
        landmark_coords = np.asarray(fw.embedding_report.landmark_coordinates)
        measured = fw.physical.measure_many([router], landmarks, probes=probes)[0]
        return tuple(float(x) for x in locate_host(landmark_coords, measured))

    def join(
        self,
        router: int,
        services: FrozenSet[ServiceName],
        *,
        probes: int = 3,
        coords: Optional[Sequence[float]] = None,
    ) -> ProxyId:
        """A proxy on physical *router* joins the overlay.

        It derives coordinates from landmark measurements (or takes
        pre-measured *coords*, e.g. replayed by the equivalence suite) and
        joins the cluster of its geometrically nearest existing proxy (the
        paper's suggested rule). Only that cluster's membership and border
        pairs are recomputed in incremental mode.
        """
        if router in self._labels:
            raise MembershipError(f"proxy {router!r} is already a member")
        point = (
            self.locate(router, probes=probes)
            if coords is None
            else tuple(float(x) for x in coords)
        )
        cluster_id = self._labels[self._nearest_member(point)]
        row = self._free_rows.pop() if self._free_rows else self._alloc_row()
        self._coord_arr[row] = point
        self._coord_row[router] = row
        self._placement[router] = frozenset(services)
        self._labels[router] = cluster_id
        if self.incremental:
            members = list(self._clusters[cluster_id])
            insort(members, router)
            self._clusters[cluster_id] = members
            self._blocks[cluster_id] = self._block(members)
            patch_borders_for_cluster(
                self._borders, cluster_id, self._clusters, self._blocks
            )
        else:
            self._full_rebuild()
        self._finish_event("join", router)
        self._maybe_restructure()
        return router

    def leave(self, proxy: ProxyId) -> None:
        """Proxy *proxy* leaves the overlay.

        In incremental mode only its cluster is patched; if it was the
        cluster's last member the cluster vanishes and the surviving
        cluster ids compact downward (exactly as a full rebuild would).
        """
        if proxy not in self._labels:
            raise MembershipError(f"proxy {proxy!r} is not a member")
        if len(self._labels) <= 2:
            raise MembershipError("cannot shrink the overlay below 2 proxies")
        cluster_id = self._labels.pop(proxy)
        self._free_rows.append(self._coord_row.pop(proxy))
        del self._placement[proxy]
        if self.incremental:
            members = [p for p in self._clusters[cluster_id] if p != proxy]
            if members:
                self._clusters[cluster_id] = members
                self._blocks[cluster_id] = self._block(members)
                patch_borders_for_cluster(
                    self._borders, cluster_id, self._clusters, self._blocks
                )
            else:
                del self._clusters[cluster_id]
                del self._blocks[cluster_id]
                for p, c in self._labels.items():
                    if c > cluster_id:
                        self._labels[p] = c - 1
                self._borders = drop_cluster_from_borders(
                    self._borders, cluster_id
                )
        else:
            self._full_rebuild()
        self._finish_event("leave", proxy)
        self._maybe_restructure()

    def restructure(self) -> None:
        """Re-run clustering from scratch (the elected proxy P's re-run).

        The only full rebuild in incremental mode; it advances the version
        epoch because cluster ids are reassigned wholesale.
        """
        clustering = cluster_nodes(
            self.space, list(self._labels), self._cluster_config
        )
        self._adopt_labels(dict(clustering.labels))
        self._refresh_borders()
        self._finish_event("restructure", None, epoch=True)

    # -- quality ------------------------------------------------------------------

    def quality(self) -> float:
        """Current clustering quality (inter/intra separation ratio)."""
        if len(self._clusters) < 2:
            return float("inf")
        try:
            return separation_ratio(self.space, self.clustering)
        except ClusteringError:
            # degenerate layout (e.g. no cluster with >= 2 members): no
            # defined ratio, but not a programming error
            return float("nan")

    def fresh_quality(self) -> float:
        """Quality a from-scratch re-clustering would achieve right now."""
        clustering = cluster_nodes(self.space, list(self._labels), self._cluster_config)
        if clustering.cluster_count < 2:
            return float("inf")
        return separation_ratio(self.space, clustering)

    # -- internals ---------------------------------------------------------------

    def _alloc_row(self) -> int:
        """A fresh row in the coordinate array, doubling capacity when full."""
        top = len(self._coord_row) + len(self._free_rows)
        if top == self._coord_arr.shape[0]:
            grown = np.empty(
                (max(8, 2 * top), self._coord_arr.shape[1]), dtype=float
            )
            grown[:top] = self._coord_arr
            self._coord_arr = grown
        return top

    def _block(self, members: Sequence[ProxyId]) -> np.ndarray:
        """The coordinate block of *members* (same values as space.array)."""
        return self._coord_arr[[self._coord_row[p] for p in members]]

    def _adopt_labels(self, labels: Dict[ProxyId, int]) -> None:
        """Install *labels*, compacting cluster ids to 0..k-1 (sorted order)."""
        proxies = list(labels)
        ids = sorted({labels[p] for p in proxies})
        remap = {old: new for new, old in enumerate(ids)}
        clusters: List[List[ProxyId]] = [[] for _ in ids]
        for p in proxies:
            labels[p] = remap[labels[p]]
            clusters[labels[p]].append(p)
        self._labels = labels
        self._clusters = [sorted(c) for c in clusters]
        self._blocks = [self._block(c) for c in self._clusters]

    def _refresh_borders(self) -> None:
        """Full closest-pair border scan over the current blocks."""
        borders: Dict[Tuple[int, int], ProxyId] = {}
        k = len(self._clusters)
        for i in range(k):
            for j in range(i + 1, k):
                a, b = closest_cross_pair(self._blocks[i], self._blocks[j])
                borders[(i, j)] = self._clusters[i][a]
                borders[(j, i)] = self._clusters[j][b]
        self._borders = borders

    def _full_rebuild(self) -> None:
        """The legacy rebuild-the-world path (``incremental=False``)."""
        self._adopt_labels(dict(self._labels))
        self._refresh_borders()

    def _nearest_member(self, point: Sequence[float]) -> ProxyId:
        """The current member geometrically closest to *point*."""
        target = np.asarray(point, dtype=float)
        best: Optional[ProxyId] = None
        best_d = float("inf")
        for members, block in zip(self._clusters, self._blocks):
            diff = block - target[None, :]
            d = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            i = int(np.argmin(d))
            if float(d[i]) < best_d:
                best, best_d = members[i], float(d[i])
        if best is None:
            raise MembershipError("overlay has no members to join next to")
        return best

    def _invalidate_views(self) -> None:
        self._space_view: Optional[CoordinateSpace] = None
        self._clustering_view: Optional[Clustering] = None
        self._overlay_view: Optional[OverlayNetwork] = None
        self._hfc_view: Optional[HFCTopology] = None

    def _finish_event(
        self, kind: str, proxy: Optional[ProxyId], *, epoch: bool = False
    ) -> None:
        self._invalidate_views()
        self.version = (
            self.version.bump_epoch() if epoch else self.version.bump()
        )
        self._record(kind, proxy)
        self.notifier.notify(self.version, kind=kind, proxy=proxy)

    def _record(self, kind: str, proxy: Optional[ProxyId]) -> None:
        quality = self.quality() if self.track_quality else None
        cluster = self._labels.get(proxy) if proxy is not None else None
        self.history.append(
            ChurnEvent(
                kind=kind, proxy=proxy, cluster=cluster, quality_after=quality
            )
        )
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.events.record(
            f"membership.{kind}",
            proxy=proxy,
            cluster=cluster,
            overlay_size=self.size,
            clusters=len(self._clusters),
            quality=quality,
        )
        telemetry.registry.counter("membership.events", kind=kind).inc()
        telemetry.registry.gauge("membership.overlay_size").set(self.size)
        telemetry.registry.gauge("membership.cluster_count").set(
            len(self._clusters)
        )

    def _maybe_restructure(self) -> None:
        if self.restructure_tolerance is None:
            return
        current = self.quality()
        fresh = self.fresh_quality()
        if not (current == current and fresh == fresh):  # NaN guard
            return
        if fresh > 0 and current < self.restructure_tolerance * fresh:
            self.restructure()


def run_churn_session(
    framework: HFCFramework,
    *,
    events: int = 40,
    join_probability: float = 0.5,
    seed: RngLike = None,
    restructure_tolerance: Optional[float] = 0.7,
    incremental: bool = True,
) -> DynamicOverlay:
    """Drive a random churn session against *framework* (the E1 bench).

    Joins pick random unused stub routers and random service subsets from
    the catalog; leaves pick random current members. Returns the
    :class:`DynamicOverlay` with its full event history.
    """
    rng = ensure_rng(seed)
    dyn = DynamicOverlay(
        framework,
        restructure_tolerance=restructure_tolerance,
        incremental=incremental,
    )
    catalog = list(framework.catalog.names)
    used = set(dyn.proxies)
    free = [s for s in framework.physical.topology.stub_nodes if s not in used]
    rng.shuffle(free)
    for _ in range(events):
        do_join = rng.random() < join_probability and free
        if do_join:
            router = free.pop()
            count = rng.randint(4, min(10, len(catalog)))
            dyn.join(router, frozenset(rng.sample(catalog, count)))
        elif dyn.size > 3:
            dyn.leave(rng.choice(dyn.proxies))
    return dyn
