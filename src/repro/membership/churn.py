"""Dynamic membership — the paper's first future-work item (Section 7).

"While we can let future proxies join clusters of their nearest neighbors,
multiple joins and leaves may deteriorate the quality of clustering. Hence
some kind of re-structuring mechanism needs to be devised."

This module implements exactly that design:

* **join**: a new proxy measures its delays to the landmarks, derives its
  coordinates (the Section 3.1 machinery), and joins the cluster of its
  geometrically nearest existing proxy;
* **leave**: a proxy is removed; border pairs it served are re-selected;
* **quality tracking**: clustering quality (separation ratio) is monitored
  against the quality a fresh re-clustering would achieve;
* **restructuring**: when quality degrades beyond a configurable tolerance,
  the overlay re-clusters from scratch (the elected proxy P re-runs
  Section 3.2/3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.cluster.mstcluster import Clustering, ClusteringConfig, cluster_nodes
from repro.cluster.quality import separation_ratio
from repro.coords.embedding import locate_host
from repro.coords.space import CoordinateSpace
from repro.core.framework import HFCFramework
from repro.overlay.hfc import HFCTopology, build_hfc
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.services.catalog import ServiceName
from repro.telemetry import Telemetry, get_telemetry
from repro.util.errors import MembershipError
from repro.util.rng import RngLike, ensure_rng

import numpy as np


@dataclass
class ChurnEvent:
    """A recorded membership change."""

    kind: str  # "join" | "leave" | "restructure"
    proxy: Optional[ProxyId]
    cluster: Optional[int]
    quality_after: float


@dataclass
class DynamicOverlay:
    """A mutable view over an HFC overlay that supports joins and leaves.

    Wraps a built :class:`HFCFramework`; every mutation produces a fresh
    consistent (overlay, clustering, HFC) triple, reachable through
    :attr:`overlay`, :attr:`clustering` and :attr:`hfc`. The wrapped
    framework itself is never mutated.
    """

    framework: HFCFramework
    #: re-cluster automatically when quality drops below
    #: ``restructure_tolerance * fresh_quality`` (None disables)
    restructure_tolerance: Optional[float] = 0.7
    history: List[ChurnEvent] = field(default_factory=list)
    #: observability scope (default: the process-wide one)
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = get_telemetry()
        fw = self.framework
        self._coords: Dict[ProxyId, tuple] = {
            p: fw.space.coordinate(p) for p in fw.overlay.proxies
        }
        self._placement: Dict[ProxyId, FrozenSet[ServiceName]] = dict(
            fw.overlay.placement
        )
        self._labels: Dict[ProxyId, int] = dict(fw.clustering.labels)
        self._cluster_config: ClusteringConfig = fw.config.clustering
        self._rebuild()

    # -- views ---------------------------------------------------------------

    @property
    def proxies(self) -> List[ProxyId]:
        """Current proxy population."""
        return list(self._labels)

    @property
    def size(self) -> int:
        """Current overlay size."""
        return len(self._labels)

    # -- mutations --------------------------------------------------------------

    def join(
        self,
        router: int,
        services: FrozenSet[ServiceName],
        *,
        probes: int = 3,
    ) -> ProxyId:
        """A proxy on physical *router* joins the overlay.

        It derives coordinates from landmark measurements and joins the
        cluster of its nearest existing proxy (the paper's suggested rule).
        """
        if router in self._labels:
            raise MembershipError(f"proxy {router!r} is already a member")
        fw = self.framework
        landmarks = fw.embedding_report.landmark_ids
        landmark_coords = np.asarray(fw.embedding_report.landmark_coordinates)
        measured = [fw.physical.measure(router, lm, probes=probes) for lm in landmarks]
        coords = tuple(float(x) for x in locate_host(landmark_coords, measured))
        self._coords[router] = coords
        self._placement[router] = frozenset(services)

        temp_space = CoordinateSpace(self._coords)
        nearest = temp_space.nearest(router, [p for p in self._labels])
        self._labels[router] = self._labels[nearest]
        self._rebuild()
        self._record("join", router)
        self._maybe_restructure()
        return router

    def leave(self, proxy: ProxyId) -> None:
        """Proxy *proxy* leaves the overlay."""
        if proxy not in self._labels:
            raise MembershipError(f"proxy {proxy!r} is not a member")
        if len(self._labels) <= 2:
            raise MembershipError("cannot shrink the overlay below 2 proxies")
        del self._labels[proxy]
        del self._coords[proxy]
        del self._placement[proxy]
        self._rebuild()
        self._record("leave", proxy)
        self._maybe_restructure()

    def restructure(self) -> None:
        """Re-run clustering from scratch (the elected proxy P's re-run)."""
        space = CoordinateSpace(self._coords)
        clustering = cluster_nodes(space, list(self._labels), self._cluster_config)
        self._labels = dict(clustering.labels)
        self._rebuild()
        self._record("restructure", None)

    # -- quality ------------------------------------------------------------------

    def quality(self) -> float:
        """Current clustering quality (inter/intra separation ratio)."""
        if self.clustering.cluster_count < 2:
            return float("inf")
        try:
            return separation_ratio(self.space, self.clustering)
        except Exception:
            return float("nan")

    def fresh_quality(self) -> float:
        """Quality a from-scratch re-clustering would achieve right now."""
        clustering = cluster_nodes(self.space, list(self._labels), self._cluster_config)
        if clustering.cluster_count < 2:
            return float("inf")
        return separation_ratio(self.space, clustering)

    # -- internals ---------------------------------------------------------------

    def _rebuild(self) -> None:
        self.space = CoordinateSpace(self._coords)
        proxies = list(self._labels)
        # Compact cluster ids (clusters may vanish when their last member leaves).
        ids = sorted({self._labels[p] for p in proxies})
        remap = {old: new for new, old in enumerate(ids)}
        clusters: List[List[ProxyId]] = [[] for _ in ids]
        for p in proxies:
            self._labels[p] = remap[self._labels[p]]
            clusters[self._labels[p]].append(p)
        self.clustering = Clustering(
            clusters=[sorted(c) for c in clusters], labels=dict(self._labels)
        )
        self.overlay = OverlayNetwork(
            physical=self.framework.physical,
            proxies=proxies,
            placement={p: self._placement[p] for p in proxies},
            space=self.space,
        )
        self.hfc: HFCTopology = build_hfc(self.overlay, self.clustering)

    def _record(self, kind: str, proxy: Optional[ProxyId]) -> None:
        quality = self.quality()
        cluster = self._labels.get(proxy) if proxy is not None else None
        self.history.append(
            ChurnEvent(
                kind=kind, proxy=proxy, cluster=cluster, quality_after=quality
            )
        )
        telemetry = self.telemetry
        assert telemetry is not None
        telemetry.events.record(
            f"membership.{kind}",
            proxy=proxy,
            cluster=cluster,
            overlay_size=self.size,
            clusters=self.clustering.cluster_count,
            quality=quality,
        )
        telemetry.registry.counter("membership.events", kind=kind).inc()
        telemetry.registry.gauge("membership.overlay_size").set(self.size)
        telemetry.registry.gauge("membership.cluster_count").set(
            self.clustering.cluster_count
        )

    def _maybe_restructure(self) -> None:
        if self.restructure_tolerance is None:
            return
        current = self.quality()
        fresh = self.fresh_quality()
        if not (current == current and fresh == fresh):  # NaN guard
            return
        if fresh > 0 and current < self.restructure_tolerance * fresh:
            self.restructure()


def run_churn_session(
    framework: HFCFramework,
    *,
    events: int = 40,
    join_probability: float = 0.5,
    seed: RngLike = None,
    restructure_tolerance: Optional[float] = 0.7,
) -> DynamicOverlay:
    """Drive a random churn session against *framework* (the E1 bench).

    Joins pick random unused stub routers and random service subsets from
    the catalog; leaves pick random current members. Returns the
    :class:`DynamicOverlay` with its full event history.
    """
    rng = ensure_rng(seed)
    dyn = DynamicOverlay(framework, restructure_tolerance=restructure_tolerance)
    catalog = list(framework.catalog.names)
    used = set(dyn.proxies)
    free = [s for s in framework.physical.topology.stub_nodes if s not in used]
    rng.shuffle(free)
    for _ in range(events):
        do_join = rng.random() < join_probability and free
        if do_join:
            router = free.pop()
            count = rng.randint(4, min(10, len(catalog)))
            dyn.join(router, frozenset(rng.sample(catalog, count)))
        elif dyn.size > 3:
            dyn.leave(rng.choice(dyn.proxies))
    return dyn
