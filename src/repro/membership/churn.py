"""Dynamic membership — the paper's first future-work item (Section 7).

"While we can let future proxies join clusters of their nearest neighbors,
multiple joins and leaves may deteriorate the quality of clustering. Hence
some kind of re-structuring mechanism needs to be devised."

This module implements exactly that design, *incrementally*:

* **join**: a new proxy measures its delays to the landmarks, derives its
  coordinates (the Section 3.1 machinery), and joins the cluster of its
  geometrically nearest existing proxy;
* **leave**: a proxy is removed; border pairs it served are re-selected;
* **quality tracking**: clustering quality (separation ratio) is monitored
  against the quality a fresh re-clustering would achieve;
* **restructuring**: when quality degrades beyond a configurable tolerance,
  the overlay re-clusters from scratch (the elected proxy P re-runs
  Section 3.2/3.3).

A join or leave touches exactly one cluster, so the default
``incremental=True`` mode patches the overlay in place: the affected
cluster's member list and coordinate block are rebuilt (O(cluster)), and
border selection re-runs only for the k-1 cluster pairs involving that
cluster (:func:`repro.overlay.hfc.patch_borders_for_cluster`), using the
same blocked closest-pair kernel as the full scan. Full reconstruction is
reserved for :meth:`DynamicOverlay.restructure` (and for
``incremental=False``, the legacy rebuild-the-world mode kept as the
benchmark baseline). The derived ``space`` / ``clustering`` / ``overlay``
/ ``hfc`` objects are materialised lazily on first access after a change,
so a burst of churn events does not pay O(n) per event for views nobody
reads. ``tests/test_incremental_equivalence.py`` proves both modes
produce identical topologies after every event.

Every event advances :attr:`DynamicOverlay.version` (an
:class:`~repro.core.versioning.OverlayVersion`: restructures bump the
epoch, joins/leaves the step) and fires :attr:`DynamicOverlay.notifier`,
which is how the state and routing layers learn that their capability
views are out of date.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cluster.mstcluster import Clustering, ClusteringConfig, cluster_nodes
from repro.cluster.quality import separation_ratio
from repro.coords.embedding import locate_host
from repro.coords.space import CoordinateSpace
from repro.core.framework import HFCFramework
from repro.core.versioning import ChangeNotifier, OverlayVersion
from repro.overlay.hfc import (
    HFCTopology,
    closest_cross_pair,
    drop_cluster_from_borders,
    patch_borders_for_cluster,
)
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.services.catalog import ServiceName
from repro.telemetry import Telemetry, get_telemetry
from repro.util.errors import ClusteringError, MembershipError
from repro.util.rng import RngLike, ensure_rng

import numpy as np


@dataclass
class ChurnEvent:
    """A recorded membership change."""

    kind: str  # "join" | "leave" | "restructure"
    proxy: Optional[ProxyId]
    cluster: Optional[int]
    #: quality after the event; None when quality tracking is disabled
    quality_after: Optional[float]


@dataclass
class DynamicOverlay:
    """A mutable view over an HFC overlay that supports joins and leaves.

    Wraps a built :class:`HFCFramework`; every mutation leaves a
    consistent (overlay, clustering, HFC) triple reachable through
    :attr:`overlay`, :attr:`clustering` and :attr:`hfc` — materialised
    lazily from the patched internal state. The wrapped framework itself
    is never mutated.
    """

    framework: HFCFramework
    #: re-cluster automatically when quality drops below
    #: ``restructure_tolerance * fresh_quality`` (None disables)
    restructure_tolerance: Optional[float] = 0.7
    history: List[ChurnEvent] = field(default_factory=list)
    #: observability scope (default: the process-wide one)
    telemetry: Optional[Telemetry] = None
    #: patch the topology per event (default) instead of rebuilding it
    incremental: bool = True
    #: compute the separation ratio after every event (O(n²/k)); disable
    #: for throughput-sensitive churn driving
    track_quality: bool = True

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = get_telemetry()
        fw = self.framework
        # Columnar coordinate storage: one growing (capacity, k) float64
        # array plus proxy -> row and a free-row list. Blocks and space
        # views gather rows from this array, so a churn session maintains
        # one coordinate buffer instead of a dict of per-proxy tuples
        # (same floats either way — fw.space hands out exact float64).
        proxies = list(fw.overlay.proxies)
        self._coord_arr: np.ndarray = np.ascontiguousarray(
            fw.space.array(proxies), dtype=float
        )
        self._coord_row: Dict[ProxyId, int] = {
            p: i for i, p in enumerate(proxies)
        }
        self._free_rows: List[int] = []
        self._placement: Dict[ProxyId, FrozenSet[ServiceName]] = dict(
            fw.overlay.placement
        )
        self._cluster_config: ClusteringConfig = fw.config.clustering
        self.version = OverlayVersion()
        self.notifier = ChangeNotifier()
        #: mutable recursive-hierarchy spec (None until attach_hierarchy):
        #: per upper level {"groups", "borders", "centroids"}, maintained
        #: incrementally along the churned spine
        self._hier_levels: Optional[List[Dict]] = None
        self._hier_meta: Optional[Dict] = None
        self._hier_base_centroids: Optional[np.ndarray] = None
        self._adopt_labels(dict(fw.clustering.labels))
        self._refresh_borders()
        self._invalidate_views()

    # -- views ---------------------------------------------------------------

    @property
    def proxies(self) -> List[ProxyId]:
        """Current proxy population."""
        return list(self._labels)

    @property
    def size(self) -> int:
        """Current overlay size."""
        return len(self._labels)

    def __contains__(self, proxy: ProxyId) -> bool:
        return proxy in self._labels

    def is_member(self, proxy: ProxyId) -> bool:
        """Whether *proxy* is currently part of the overlay (O(1))."""
        return proxy in self._labels

    @property
    def space(self) -> CoordinateSpace:
        """The current coordinate space (materialised lazily)."""
        if self._space_view is None:
            proxies = list(self._labels)
            rows = [self._coord_row[p] for p in proxies]
            self._space_view = CoordinateSpace.from_stacked(
                proxies, self._coord_arr[rows]
            )
        return self._space_view

    @property
    def clustering(self) -> Clustering:
        """The current clustering (materialised lazily)."""
        if self._clustering_view is None:
            self._clustering_view = Clustering(
                clusters=[list(c) for c in self._clusters],
                labels=dict(self._labels),
            )
        return self._clustering_view

    @property
    def overlay(self) -> OverlayNetwork:
        """The current overlay network (materialised lazily)."""
        if self._overlay_view is None:
            proxies = list(self._labels)
            self._overlay_view = OverlayNetwork(
                physical=self.framework.physical,
                proxies=proxies,
                placement={p: self._placement[p] for p in proxies},
                space=self.space,
            )
        return self._overlay_view

    @property
    def hfc(self) -> HFCTopology:
        """The current HFC topology (materialised lazily)."""
        if self._hfc_view is None:
            self._hfc_view = HFCTopology(
                overlay=self.overlay,
                clustering=self.clustering,
                space=self.space,
                borders=dict(self._borders),
            )
        return self._hfc_view

    def columnar(self):
        """The current overlay state as one struct-of-arrays snapshot.

        Builds a :class:`~repro.state.columnar.ColumnarOverlayState` from
        the live membership state (stamped with :attr:`version`), which is
        what ``repro.persistence.save_snapshot`` serialises — a consistent
        point-in-time capture, decoupled from later churn.
        """
        from repro.state.columnar import ColumnarOverlayState

        proxies = list(self._labels)
        return ColumnarOverlayState.from_parts(
            proxies=proxies,
            space=self.space,
            clustering=self.clustering,
            borders=self._borders,
            placement={p: self._placement[p] for p in proxies},
            version=self.version,
            levels=(
                list(self.hierarchy().levels)
                if self._hier_levels is not None
                else None
            ),
        )

    # -- recursive hierarchy ------------------------------------------------------

    def attach_hierarchy(
        self,
        levels: int = 3,
        *,
        method: str = "kcenter",
        seed=0,
        group_counts=None,
    ):
        """Build a depth-*levels* recursive hierarchy and keep it patched.

        After attaching, every incremental join/leave patches the level
        stack along the affected spine only: the churned cluster's
        centroid, its ancestor groups' centroids, and the border pairs
        involving those ancestors at each level are re-selected — the
        upper-level *assignment* stays sticky, exactly like cluster
        membership does for the base level. :meth:`restructure` (and the
        legacy ``incremental=False`` mode) re-derives the assignment from
        scratch instead. The patched stack is bit-identical to
        ``build_levels(self.hfc, depth, assignments=<current groups>)``
        (the equivalence suite asserts this).
        """
        from repro.hierarchy.levels import build_levels

        hierarchy = build_levels(
            self.hfc, levels, method=method, seed=seed, group_counts=group_counts
        )
        self._hier_meta = {
            "depth": levels,
            "method": method,
            "seed": seed,
            "group_counts": group_counts,
        }
        self._adopt_hierarchy(hierarchy)
        return self.hierarchy()

    def hierarchy(self):
        """The current recursive hierarchy (materialised lazily).

        Raises :class:`MembershipError` until :meth:`attach_hierarchy` has
        run. The returned object snapshots the patched spec — centroids
        copied, borders re-coded against the current proxy rows — so it
        stays consistent if churn continues afterwards.
        """
        if self._hier_levels is None:
            raise MembershipError("no hierarchy attached; call attach_hierarchy")
        if self._hierarchy_view is None:
            from repro.hierarchy.levels import HierarchyLevels
            from repro.state.columnar import HierarchyLevel

            row_proxies = list(self._labels)
            row_of = {p: r for r, p in enumerate(row_proxies)}
            out: List = []
            count_below = len(self._clusters)
            for spec in self._hier_levels:
                groups = spec["groups"]
                count = len(groups)
                parent = np.full(count_below, -1, dtype=np.int64)
                ptr = np.zeros(count + 1, dtype=np.int64)
                members: List[int] = []
                for gid, units in enumerate(groups):
                    for u in units:
                        parent[u] = gid
                    members.extend(units)
                    ptr[gid + 1] = len(members)
                border = np.full((count, count), -1, dtype=np.int64)
                for (i, j), proxy in spec["borders"].items():
                    border[i, j] = row_of[proxy]
                out.append(
                    HierarchyLevel(
                        parent=parent,
                        ptr=ptr,
                        members=np.array(members, dtype=np.int64),
                        border_matrix=border,
                        centroids=spec["centroids"].copy(),
                    )
                )
                count_below = count
            self._hierarchy_view = HierarchyLevels(
                hfc=self.hfc, levels=out, row_proxies=row_proxies
            )
            self._hierarchy_view.validate()
        return self._hierarchy_view

    def _adopt_hierarchy(self, hierarchy) -> None:
        """Install *hierarchy* as the mutable spec the patch paths maintain."""
        self._hier_base_centroids = np.array(
            [block.mean(axis=0) for block in self._blocks], dtype=float
        )
        spec_levels: List[Dict] = []
        for level in hierarchy.levels:
            groups = [list(level.members_of(g)) for g in range(level.count)]
            borders: Dict[Tuple[int, int], ProxyId] = {}
            for i in range(level.count):
                for j in range(level.count):
                    if i != j and level.border_matrix[i, j] >= 0:
                        borders[(i, j)] = hierarchy.row_proxies[
                            int(level.border_matrix[i, j])
                        ]
            spec_levels.append(
                {
                    "groups": groups,
                    "borders": borders,
                    "centroids": level.centroids.copy(),
                }
            )
        self._hier_levels = spec_levels
        self._hierarchy_view = None

    def _rebuild_hierarchy(self) -> None:
        """Re-derive the hierarchy assignment from scratch (restructure path)."""
        if self._hier_levels is None:
            return
        from repro.hierarchy.levels import build_levels

        self._invalidate_views()  # the base state just changed wholesale
        meta = self._hier_meta or {}
        hierarchy = build_levels(
            self.hfc,
            meta.get("depth", 2 + len(self._hier_levels)),
            method=meta.get("method", "kcenter"),
            seed=meta.get("seed", 0),
            group_counts=meta.get("group_counts"),
        )
        self._adopt_hierarchy(hierarchy)

    def _patch_hierarchy_spine(self, cluster_id: int) -> None:
        """Re-centroid + re-border the level stack along one cluster's spine.

        The only hierarchy work an incremental join/leave pays: the
        churned cluster's centroid, then per upper level the one ancestor
        group's centroid and its border pairs against every sibling group
        (same build-order proxy lists and the same blocked closest-pair
        kernel as a cold build, so the result is bit-identical to
        rebuilding under the current assignment).
        """
        if self._hier_levels is None:
            return
        self._hier_base_centroids[cluster_id] = self._blocks[cluster_id].mean(
            axis=0
        )
        gid = next(
            g
            for g, units in enumerate(self._hier_levels[0]["groups"])
            if cluster_id in units
        )
        self._hier_patch_from(0, gid)

    def _hier_patch_from(self, start: int, gid: int) -> None:
        """Patch centroids/borders from level *start* (group *gid*) upward."""
        unit_proxies: List[List[ProxyId]] = [list(c) for c in self._clusters]
        unit_centroids = self._hier_base_centroids
        g: Optional[int] = None
        for idx, spec in enumerate(self._hier_levels):
            groups = spec["groups"]
            group_proxies = [
                [p for u in units for p in unit_proxies[u]] for units in groups
            ]
            if idx == start:
                g = gid
            elif idx > start:
                prev = g
                g = next(
                    gg for gg, units in enumerate(groups) if prev in units
                )
            if g is not None:
                spec["centroids"][g] = unit_centroids[groups[g]].mean(axis=0)
                for other in range(len(groups)):
                    if other == g:
                        continue
                    i, j = (g, other) if g < other else (other, g)
                    a, b = closest_cross_pair(
                        self._block(group_proxies[i]),
                        self._block(group_proxies[j]),
                    )
                    spec["borders"][(i, j)] = group_proxies[i][a]
                    spec["borders"][(j, i)] = group_proxies[j][b]
            unit_proxies = group_proxies
            unit_centroids = spec["centroids"]
        self._hierarchy_view = None

    def _hier_drop_cluster(self, cluster_id: int) -> None:
        """A base cluster vanished: unthread it from the level stack.

        Mirrors the base level's compaction: the unit is removed from its
        parent group and higher unit ids shift down; an emptied group is
        itself removed the same way one level up (cascading). The
        surviving ancestor spine is then re-centroided and re-bordered.
        """
        if self._hier_levels is None:
            return
        self._hier_base_centroids = np.delete(
            self._hier_base_centroids, cluster_id, axis=0
        )
        removed = cluster_id
        for idx, spec in enumerate(self._hier_levels):
            groups = spec["groups"]
            gid = next(
                g for g, units in enumerate(groups) if removed in units
            )
            for g in range(len(groups)):
                groups[g] = [
                    u - (1 if u > removed else 0)
                    for u in groups[g]
                    if u != removed
                ]
            if groups[gid]:
                self._hier_patch_from(idx, gid)
                return
            del groups[gid]
            spec["centroids"] = np.delete(spec["centroids"], gid, axis=0)
            spec["borders"] = {
                (
                    i - (1 if i > gid else 0),
                    j - (1 if j > gid else 0),
                ): proxy
                for (i, j), proxy in spec["borders"].items()
                if i != gid and j != gid
            }
            removed = gid
        # the whole spine vanished through the top: the remaining groups'
        # populations are untouched, so nothing is left to re-select
        self._hierarchy_view = None

    @classmethod
    def from_snapshot(cls, snapshot, **kwargs) -> "DynamicOverlay":
        """Warm-start a dynamic overlay from a loaded snapshot.

        *snapshot* is a ``repro.persistence.OverlaySnapshot``; the restored
        framework skips re-embedding and re-clustering (the dominant cost
        of a cold build), and the overlay resumes at the snapshot's
        :class:`~repro.core.versioning.OverlayVersion` so version-driven
        consumers (router caches, capability feeds) keep their ordering.
        """
        dyn = cls(snapshot.framework, **kwargs)
        dyn.version = snapshot.version
        return dyn

    # -- mutations --------------------------------------------------------------

    def locate(self, router: int, *, probes: int = 3) -> Tuple[float, ...]:
        """Coordinates for physical *router* from landmark measurements.

        Uses the landmark-side batched measurement path, so a join costs
        one cached Dijkstra per landmark instead of one from the joining
        router.
        """
        fw = self.framework
        landmarks = fw.embedding_report.landmark_ids
        landmark_coords = np.asarray(fw.embedding_report.landmark_coordinates)
        measured = fw.physical.measure_many([router], landmarks, probes=probes)[0]
        return tuple(float(x) for x in locate_host(landmark_coords, measured))

    def join(
        self,
        router: int,
        services: FrozenSet[ServiceName],
        *,
        probes: int = 3,
        coords: Optional[Sequence[float]] = None,
    ) -> ProxyId:
        """A proxy on physical *router* joins the overlay.

        It derives coordinates from landmark measurements (or takes
        pre-measured *coords*, e.g. replayed by the equivalence suite) and
        joins the cluster of its geometrically nearest existing proxy (the
        paper's suggested rule). Only that cluster's membership and border
        pairs are recomputed in incremental mode.
        """
        if router in self._labels:
            raise MembershipError(f"proxy {router!r} is already a member")
        point = (
            self.locate(router, probes=probes)
            if coords is None
            else tuple(float(x) for x in coords)
        )
        cluster_id = self._labels[self._nearest_member(point)]
        row = self._free_rows.pop() if self._free_rows else self._alloc_row()
        self._coord_arr[row] = point
        self._coord_row[router] = row
        self._placement[router] = frozenset(services)
        self._labels[router] = cluster_id
        if self.incremental:
            members = list(self._clusters[cluster_id])
            insort(members, router)
            self._clusters[cluster_id] = members
            self._blocks[cluster_id] = self._block(members)
            patch_borders_for_cluster(
                self._borders, cluster_id, self._clusters, self._blocks
            )
            self._patch_hierarchy_spine(cluster_id)
        else:
            self._full_rebuild()
        self._finish_event("join", router)
        self._maybe_restructure()
        return router

    def leave(self, proxy: ProxyId) -> None:
        """Proxy *proxy* leaves the overlay.

        In incremental mode only its cluster is patched; if it was the
        cluster's last member the cluster vanishes and the surviving
        cluster ids compact downward (exactly as a full rebuild would).
        """
        if proxy not in self._labels:
            raise MembershipError(f"proxy {proxy!r} is not a member")
        if len(self._labels) <= 2:
            raise MembershipError("cannot shrink the overlay below 2 proxies")
        cluster_id = self._labels.pop(proxy)
        self._free_rows.append(self._coord_row.pop(proxy))
        del self._placement[proxy]
        if self.incremental:
            members = [p for p in self._clusters[cluster_id] if p != proxy]
            if members:
                self._clusters[cluster_id] = members
                self._blocks[cluster_id] = self._block(members)
                patch_borders_for_cluster(
                    self._borders, cluster_id, self._clusters, self._blocks
                )
                self._patch_hierarchy_spine(cluster_id)
            else:
                del self._clusters[cluster_id]
                del self._blocks[cluster_id]
                for p, c in self._labels.items():
                    if c > cluster_id:
                        self._labels[p] = c - 1
                self._borders = drop_cluster_from_borders(
                    self._borders, cluster_id
                )
                self._hier_drop_cluster(cluster_id)
        else:
            self._full_rebuild()
        self._finish_event("leave", proxy)
        self._maybe_restructure()

    def restructure(self) -> None:
        """Re-run clustering from scratch (the elected proxy P's re-run).

        The only full rebuild in incremental mode; it advances the version
        epoch because cluster ids are reassigned wholesale.
        """
        clustering = cluster_nodes(
            self.space, list(self._labels), self._cluster_config
        )
        self._adopt_labels(dict(clustering.labels))
        self._refresh_borders()
        self._rebuild_hierarchy()
        self._finish_event("restructure", None, epoch=True)

    # -- quality ------------------------------------------------------------------

    def quality(self) -> float:
        """Current clustering quality (inter/intra separation ratio)."""
        if len(self._clusters) < 2:
            return float("inf")
        try:
            return separation_ratio(self.space, self.clustering)
        except ClusteringError:
            # degenerate layout (e.g. no cluster with >= 2 members): no
            # defined ratio, but not a programming error
            return float("nan")

    def fresh_quality(self) -> float:
        """Quality a from-scratch re-clustering would achieve right now."""
        clustering = cluster_nodes(self.space, list(self._labels), self._cluster_config)
        if clustering.cluster_count < 2:
            return float("inf")
        return separation_ratio(self.space, clustering)

    # -- internals ---------------------------------------------------------------

    def _alloc_row(self) -> int:
        """A fresh row in the coordinate array, doubling capacity when full."""
        top = len(self._coord_row) + len(self._free_rows)
        if top == self._coord_arr.shape[0]:
            grown = np.empty(
                (max(8, 2 * top), self._coord_arr.shape[1]), dtype=float
            )
            grown[:top] = self._coord_arr
            self._coord_arr = grown
        return top

    def _block(self, members: Sequence[ProxyId]) -> np.ndarray:
        """The coordinate block of *members* (same values as space.array)."""
        return self._coord_arr[[self._coord_row[p] for p in members]]

    def _adopt_labels(self, labels: Dict[ProxyId, int]) -> None:
        """Install *labels*, compacting cluster ids to 0..k-1 (sorted order)."""
        proxies = list(labels)
        ids = sorted({labels[p] for p in proxies})
        remap = {old: new for new, old in enumerate(ids)}
        clusters: List[List[ProxyId]] = [[] for _ in ids]
        for p in proxies:
            labels[p] = remap[labels[p]]
            clusters[labels[p]].append(p)
        self._labels = labels
        self._clusters = [sorted(c) for c in clusters]
        self._blocks = [self._block(c) for c in self._clusters]

    def _refresh_borders(self) -> None:
        """Full closest-pair border scan over the current blocks."""
        borders: Dict[Tuple[int, int], ProxyId] = {}
        k = len(self._clusters)
        for i in range(k):
            for j in range(i + 1, k):
                a, b = closest_cross_pair(self._blocks[i], self._blocks[j])
                borders[(i, j)] = self._clusters[i][a]
                borders[(j, i)] = self._clusters[j][b]
        self._borders = borders

    def _full_rebuild(self) -> None:
        """The legacy rebuild-the-world path (``incremental=False``)."""
        self._adopt_labels(dict(self._labels))
        self._refresh_borders()
        self._rebuild_hierarchy()

    def _nearest_member(self, point: Sequence[float]) -> ProxyId:
        """The current member geometrically closest to *point*."""
        target = np.asarray(point, dtype=float)
        best: Optional[ProxyId] = None
        best_d = float("inf")
        for members, block in zip(self._clusters, self._blocks):
            diff = block - target[None, :]
            d = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            i = int(np.argmin(d))
            if float(d[i]) < best_d:
                best, best_d = members[i], float(d[i])
        if best is None:
            raise MembershipError("overlay has no members to join next to")
        return best

    def _invalidate_views(self) -> None:
        self._space_view: Optional[CoordinateSpace] = None
        self._clustering_view: Optional[Clustering] = None
        self._overlay_view: Optional[OverlayNetwork] = None
        self._hfc_view: Optional[HFCTopology] = None
        self._hierarchy_view = None

    def _finish_event(
        self, kind: str, proxy: Optional[ProxyId], *, epoch: bool = False
    ) -> None:
        self._invalidate_views()
        self.version = (
            self.version.bump_epoch() if epoch else self.version.bump()
        )
        self._record(kind, proxy)
        self.notifier.notify(self.version, kind=kind, proxy=proxy)

    def _record(self, kind: str, proxy: Optional[ProxyId]) -> None:
        quality = self.quality() if self.track_quality else None
        cluster = self._labels.get(proxy) if proxy is not None else None
        self.history.append(
            ChurnEvent(
                kind=kind, proxy=proxy, cluster=cluster, quality_after=quality
            )
        )
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.events.record(
            f"membership.{kind}",
            proxy=proxy,
            cluster=cluster,
            overlay_size=self.size,
            clusters=len(self._clusters),
            quality=quality,
        )
        telemetry.registry.counter("membership.events", kind=kind).inc()
        telemetry.registry.gauge("membership.overlay_size").set(self.size)
        telemetry.registry.gauge("membership.cluster_count").set(
            len(self._clusters)
        )

    def _maybe_restructure(self) -> None:
        if self.restructure_tolerance is None:
            return
        current = self.quality()
        fresh = self.fresh_quality()
        if not (current == current and fresh == fresh):  # NaN guard
            return
        if fresh > 0 and current < self.restructure_tolerance * fresh:
            self.restructure()


def run_churn_session(
    framework: HFCFramework,
    *,
    events: int = 40,
    join_probability: float = 0.5,
    seed: RngLike = None,
    restructure_tolerance: Optional[float] = 0.7,
    incremental: bool = True,
) -> DynamicOverlay:
    """Drive a random churn session against *framework* (the E1 bench).

    Joins pick random unused stub routers and random service subsets from
    the catalog; leaves pick random current members. Returns the
    :class:`DynamicOverlay` with its full event history.
    """
    rng = ensure_rng(seed)
    dyn = DynamicOverlay(
        framework,
        restructure_tolerance=restructure_tolerance,
        incremental=incremental,
    )
    catalog = list(framework.catalog.names)
    used = set(dyn.proxies)
    free = [s for s in framework.physical.topology.stub_nodes if s not in used]
    rng.shuffle(free)
    for _ in range(events):
        do_join = rng.random() < join_probability and free
        if do_join:
            router = free.pop()
            count = rng.randint(4, min(10, len(catalog)))
            dyn.join(router, frozenset(rng.sample(catalog, count)))
        elif dyn.size > 3:
            dyn.leave(rng.choice(dyn.proxies))
    return dyn
