"""Open-loop arrival processes for the traffic engine.

Arrivals are generated one at a time on the simulated clock: the engine
asks a sampler for the next arrival instant after the current one. Two
base processes are provided:

* :class:`Poisson` — homogeneous Poisson arrivals at a fixed rate
  (sessions per simulated ms);
* :class:`MMPP` — a Markov-modulated Poisson process: the rate switches
  among a set of states with exponentially distributed dwell times, the
  classic model for bursty session traffic.

Either can be shaped by multiplicative time-varying modifiers
(:class:`Diurnal` — a smooth day/night rate curve — and
:class:`FlashCrowd` — a ramped burst multiplier). Shaped processes are
simulated exactly by Lewis-Shedler thinning against the process's peak
rate, so the generated point process follows the instantaneous rate
``base_rate(t) * prod(shape.factor(t))``.

Everything is deterministic given the ``random.Random`` handed to
:meth:`ArrivalProcess.sampler`: the process specs themselves are frozen
and hold no run state, so one config can drive many identical runs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from repro.util.errors import TrafficError


# -- rate shapes (multiplicative modifiers) ----------------------------------------


class RateShape:
    """A multiplicative, time-varying rate modifier."""

    #: the largest factor the shape can produce (thinning bound)
    peak: float = 1.0

    def factor(self, t: float) -> float:
        """The rate multiplier at simulated time *t* (in [0, peak])."""
        raise NotImplementedError


@dataclass(frozen=True)
class Diurnal(RateShape):
    """A smooth day/night curve: the rate dips to ``trough`` once per period.

    ``factor(t)`` traces a raised cosine from ``trough`` (at t=0, the
    "night") up to 1.0 (at half a period, the "day") and back.
    """

    period: float = 20_000.0
    trough: float = 0.25

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise TrafficError("diurnal period must be positive")
        if not 0.0 <= self.trough <= 1.0:
            raise TrafficError("diurnal trough must be in [0, 1]")

    @property
    def peak(self) -> float:  # type: ignore[override]
        return 1.0

    def factor(self, t: float) -> float:
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
        return self.trough + (1.0 - self.trough) * phase


@dataclass(frozen=True)
class FlashCrowd(RateShape):
    """A ramped burst: the rate climbs to ``magnitude``× and decays back.

    The factor ramps linearly from 1 to ``magnitude`` over ``ramp`` time
    units starting at ``start``, holds, then ramps back down so the burst
    ends at ``start + duration``.
    """

    start: float = 5_000.0
    duration: float = 4_000.0
    magnitude: float = 4.0
    ramp: float = 500.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.start < 0:
            raise TrafficError("flash crowd needs start >= 0 and duration > 0")
        if self.magnitude < 1.0:
            raise TrafficError("flash crowd magnitude must be >= 1")
        if not 0 < self.ramp * 2 <= self.duration:
            raise TrafficError("flash crowd ramp must satisfy 0 < 2*ramp <= duration")

    @property
    def peak(self) -> float:  # type: ignore[override]
        return self.magnitude

    def factor(self, t: float) -> float:
        end = self.start + self.duration
        if t <= self.start or t >= end:
            return 1.0
        lift = self.magnitude - 1.0
        if t < self.start + self.ramp:
            return 1.0 + lift * (t - self.start) / self.ramp
        if t > end - self.ramp:
            return 1.0 + lift * (end - t) / self.ramp
        return self.magnitude


# -- arrival processes -------------------------------------------------------------


class ArrivalSampler:
    """Stateful per-run view of an arrival process (one per engine run)."""

    def __init__(self, process: "ArrivalProcess", rng: random.Random) -> None:
        self.process = process
        self.rng = rng

    def next_after(self, t: float) -> float:
        """The next arrival instant strictly after *t* (monotone calls only)."""
        raise NotImplementedError

    # Lewis-Shedler thinning against the process peak; exact for any
    # piecewise-continuous instantaneous rate bounded by ``peak``.
    def _thinned(self, t: float, peak: float) -> float:
        rng = self.rng
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self._rate_at(t):
                return t

    def _rate_at(self, t: float) -> float:
        raise NotImplementedError


class ArrivalProcess:
    """Frozen spec of an arrival process; :meth:`sampler` yields run state."""

    shapes: Tuple[RateShape, ...] = ()

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        raise NotImplementedError

    def _shape_factor(self, t: float) -> float:
        factor = 1.0
        for shape in self.shapes:
            factor *= shape.factor(t)
        return factor

    def _shape_peak(self) -> float:
        peak = 1.0
        for shape in self.shapes:
            peak *= shape.peak
        return peak


@dataclass(frozen=True)
class Poisson(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per ms (optionally shaped)."""

    rate: float = 0.02
    shapes: Tuple[RateShape, ...] = ()

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise TrafficError("arrival rate must be positive")

    def mean_rate(self) -> float:
        return self.rate

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _PoissonSampler(self, rng)


class _PoissonSampler(ArrivalSampler):
    def next_after(self, t: float) -> float:
        process: Poisson = self.process  # type: ignore[assignment]
        if not process.shapes:
            return t + self.rng.expovariate(process.rate)
        return self._thinned(t, process.rate * process._shape_peak())

    def _rate_at(self, t: float) -> float:
        process: Poisson = self.process  # type: ignore[assignment]
        return process.rate * process._shape_factor(t)


@dataclass(frozen=True)
class MMPP(ArrivalProcess):
    """Markov-modulated Poisson arrivals.

    The process dwells in one of ``rates``' states for an exponential time
    with mean ``mean_dwell``, emitting Poisson arrivals at the state's
    rate, then jumps to a uniformly random *other* state. ``rates`` may
    contain zero entries (silent states).
    """

    rates: Tuple[float, ...] = (0.005, 0.05)
    mean_dwell: float = 2_000.0
    shapes: Tuple[RateShape, ...] = ()

    def __post_init__(self) -> None:
        if len(self.rates) < 2:
            raise TrafficError("MMPP needs at least two rate states")
        if any(r < 0 for r in self.rates) or max(self.rates) <= 0:
            raise TrafficError("MMPP rates must be >= 0 with a positive maximum")
        if self.mean_dwell <= 0:
            raise TrafficError("MMPP mean_dwell must be positive")

    def mean_rate(self) -> float:
        return sum(self.rates) / len(self.rates)

    def sampler(self, rng: random.Random) -> ArrivalSampler:
        return _MMPPSampler(self, rng)


class _MMPPSampler(ArrivalSampler):
    """Thinning against the peak state rate, with a lazily advanced chain."""

    def __init__(self, process: MMPP, rng: random.Random) -> None:
        super().__init__(process, rng)
        self._state = 0
        self._state_until = rng.expovariate(1.0 / process.mean_dwell)

    def next_after(self, t: float) -> float:
        process: MMPP = self.process  # type: ignore[assignment]
        return self._thinned(t, max(process.rates) * process._shape_peak())

    def _advance_to(self, t: float) -> None:
        process: MMPP = self.process  # type: ignore[assignment]
        rng = self.rng
        while self._state_until <= t:
            hop = rng.randrange(len(process.rates) - 1)
            self._state = (self._state + 1 + hop) % len(process.rates)
            self._state_until += rng.expovariate(1.0 / process.mean_dwell)

    def _rate_at(self, t: float) -> float:
        process: MMPP = self.process  # type: ignore[assignment]
        self._advance_to(t)
        return process.rates[self._state] * process._shape_factor(t)
