"""Synthetic 100k+-proxy workload for the sharded event simulator.

A full :meth:`HFCFramework.build` is quadratic in the proxy count (MST
clustering over the delay matrix), so the scale benches cannot construct
a real framework at n=100k. This module builds the *columnar state
directly*: clusters laid out on a grid with a guaranteed inter-cluster
gap, members uniform inside each cluster's radius, borders picked as the
member closest to the peer cluster's centre — the same shape the real
pipeline produces, at any n, in O(n·C).

Delivery delays are coordinate distances, so the coordinate lower bound
(:func:`repro.netsim.shard.coordinate_lookahead`) is a *valid* lookahead
by the triangle inequality, and the conservative window protocol is
exact.

:class:`UniformTraffic` is the matching :class:`ShardProgram`: every
proxy issues requests on a fixed period with a hash-derived phase and a
hash-derived destination, each request walking the paper's 4-node path
(source → own border → peer border → destination). Everything is a pure
function of (seed, proxy, request index) — no RNG stream is shared
across shards — so the completed-request count is bit-identical for any
shard count and any worker count: the benches gate on that ratio being
exactly 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.netsim.eventsim import Message, Process, Simulator
from repro.netsim.shard import ShardPlan, ShardProgram
from repro.state.columnar import ColumnarOverlayState, ColumnarShard
from repro.util.errors import StateError


def synthetic_overlay(
    n: int,
    clusters: int,
    *,
    seed: int = 0,
    spacing: float = 200.0,
    radius: float = 40.0,
    services: int = 8,
) -> ColumnarOverlayState:
    """A grid-of-clusters columnar overlay with a guaranteed cluster gap.

    Cluster centres sit on a square grid *spacing* apart; members are
    uniform in the square inscribed in the *radius* disk around their
    centre, so any two clusters are at least ``spacing - 2 * radius``
    apart and the coordinate lookahead is bounded away from zero.
    """
    if clusters < 1 or n < clusters:
        raise StateError(f"need 1 <= clusters <= n, got clusters={clusters}, n={n}")
    if spacing <= 2 * radius:
        raise StateError(
            f"spacing {spacing} must exceed twice the radius {radius} "
            "to keep clusters apart"
        )
    rng = np.random.default_rng(seed)
    side = math.ceil(math.sqrt(clusters))
    centers = np.array(
        [(spacing * (c % side), spacing * (c // side)) for c in range(clusters)],
        dtype=float,
    )
    base, extra = divmod(n, clusters)
    sizes = np.full(clusters, base, dtype=np.int64)
    sizes[:extra] += 1
    labels = np.repeat(np.arange(clusters, dtype=np.int64), sizes)
    # uniform in the inscribed square: max offset norm == radius exactly
    half = radius / math.sqrt(2.0)
    coords = centers[labels] + rng.uniform(-half, half, size=(n, 2))
    cluster_ptr = np.zeros(clusters + 1, dtype=np.int64)
    np.cumsum(sizes, out=cluster_ptr[1:])
    border_matrix = np.full((clusters, clusters), -1, dtype=np.int64)
    for cid in range(clusters):
        lo, hi = int(cluster_ptr[cid]), int(cluster_ptr[cid + 1])
        block = coords[lo:hi]
        # member closest to each peer centre; ties break to the lowest row,
        # matching the real border-selection convention
        dists = np.linalg.norm(block[:, None, :] - centers[None, :, :], axis=2)
        nearest = lo + np.argmin(dists, axis=0)
        border_matrix[cid, :] = nearest
        border_matrix[cid, cid] = -1
    vocab = sorted(f"svc{i}" for i in range(services))
    code_of = {name: i for i, name in enumerate(vocab)}
    codes = np.array([code_of[f"svc{r % services}"] for r in range(n)], dtype=np.int64)
    state = ColumnarOverlayState(
        proxies=np.arange(n, dtype=np.int64),
        coords=coords,
        labels=labels,
        cluster_ptr=cluster_ptr,
        cluster_members=np.arange(n, dtype=np.int64),
        border_matrix=border_matrix,
        service_names=vocab,
        placement_ptr=np.arange(n + 1, dtype=np.int64),
        placement_codes=codes,
    )
    state.validate()
    return state


def _mix(a: int, b: int, c: int = 0) -> int:
    """A small deterministic integer hash (no RNG stream to interleave)."""
    h = (a * 0x9E3779B1 + b * 0x85EBCA77 + c * 0xC2B2AE3D + 0x165667B1) & 0xFFFFFFFF
    h ^= h >> 15
    h = (h * 0x2C1B3C6D) & 0xFFFFFFFF
    h ^= h >> 12
    return h


class _Relay(Process):
    """Per-proxy hop forwarder for :class:`UniformTraffic`.

    Counters hang off the relay, not the program: one program instance
    sets up every shard in-process, so per-shard state must live with
    the shard's processes.
    """

    def __init__(
        self, address: Any, program: "UniformTraffic", shard: int, counters: Dict[str, Any]
    ) -> None:
        super().__init__(address)
        self.program = program
        self.shard = shard
        self.counters = counters

    def receive(self, message: Message) -> None:
        self.program._hop(self, message)


class UniformTraffic(ShardProgram):
    """Deterministic periodic request traffic over a synthetic overlay.

    Each proxy issues ``duration / period`` requests; request ``k`` of
    proxy ``p`` starts at phase ``hash(seed, p) % period`` and walks
    source → border(src-cluster → dst-cluster) → border(dst → src) →
    destination, where the destination cluster and member come from
    ``hash(seed, p, k)``. Hop delays are coordinate distances.
    """

    def __init__(
        self,
        state: ColumnarOverlayState,
        *,
        period: float = 500.0,
        duration: float = 2000.0,
        seed: int = 0,
    ) -> None:
        if period <= 0 or duration <= 0:
            raise StateError("period and duration must be positive")
        self.period = period
        self.duration = duration
        self.seed = seed
        # shared numpy columns (copy-on-write under fork, pickled once
        # per worker under spawn)
        self.coords = state.coords
        self.proxies = state.proxies
        self.labels = state.labels
        self.cluster_ptr = state.cluster_ptr
        self.cluster_members = state.cluster_members
        self.border_matrix = state.border_matrix

    # -- ShardProgram ------------------------------------------------------------

    def setup(self, sim: Simulator, view: Optional[ColumnarShard], plan: ShardPlan) -> None:
        if view is None:
            raise StateError("UniformTraffic needs the shard's columnar view")
        shard = view.shard
        registry = sim.telemetry.registry
        label = str(shard)
        counters = {
            "requests": registry.counter("shardload.requests", shard=label),
            "completed": registry.counter("shardload.completed", shard=label),
            "hops_intra": registry.counter("shardload.hops", shard=label, reach="intra"),
            "hops_cross": registry.counter("shardload.hops", shard=label, reach="cross"),
        }
        self._plan = plan
        for row in view.member_rows:
            row = int(row)
            proxy = int(self.proxies[row])
            relay = _Relay(proxy, self, shard, counters)
            sim.register(relay)
            phase = (_mix(self.seed, proxy) % 10_000) / 10_000.0 * self.period
            sim.schedule(phase, self._issuer(sim, relay, row))

    def collect(self, sim: Simulator) -> Dict[str, int]:
        shard = str(getattr(sim, "shard_id", 0))
        registry = sim.telemetry.registry
        return {
            "shard": int(shard),
            "events": sim.events_processed,
            "requests": registry.counter("shardload.requests", shard=shard).value,
            "completed": registry.counter("shardload.completed", shard=shard).value,
            "hops_intra": registry.counter(
                "shardload.hops", shard=shard, reach="intra"
            ).value,
            "hops_cross": registry.counter(
                "shardload.hops", shard=shard, reach="cross"
            ).value,
        }

    # -- workload ----------------------------------------------------------------

    def _issuer(self, sim: Simulator, relay: _Relay, row: int):
        counter = {"k": 0}

        def issue() -> None:
            self._issue(sim, relay, row, counter["k"])
            counter["k"] += 1
            if sim.now + self.period < self.duration:
                sim.schedule(self.period, issue)

        return issue

    def _issue(self, sim: Simulator, relay: _Relay, row: int, k: int) -> None:
        relay.counters["requests"].inc()
        src_cluster = int(self.labels[row])
        cluster_count = int(self.cluster_ptr.shape[0]) - 1
        h = _mix(self.seed, row, k)
        dst_cluster = h % cluster_count
        lo, hi = int(self.cluster_ptr[dst_cluster]), int(self.cluster_ptr[dst_cluster + 1])
        dst_row = int(self.cluster_members[lo + _mix(h, k, 1) % (hi - lo)])
        if dst_cluster == src_cluster:
            path = (row, dst_row) if dst_row != row else (row,)
        else:
            out_border = int(self.border_matrix[src_cluster, dst_cluster])
            in_border = int(self.border_matrix[dst_cluster, src_cluster])
            path = (row, out_border, in_border, dst_row)
        rid = (row, k)
        if len(path) == 1:
            relay.counters["completed"].inc()
            return
        self._forward(relay, rid, path, 0)

    def _hop(self, relay: _Relay, message: Message) -> None:
        rid, path, idx = message.payload
        if idx + 1 >= len(path):
            relay.counters["completed"].inc()
            return
        self._forward(relay, rid, path, idx)

    def _forward(self, relay: _Relay, rid: Any, path: Any, idx: int) -> None:
        here, nxt = path[idx], path[idx + 1]
        delay = float(math.dist(self.coords[here], self.coords[nxt]))
        dest_proxy = int(self.proxies[nxt])
        reach = (
            "intra"
            if self._plan.shard_of(dest_proxy) == self._plan.shard_of(relay.address)
            else "cross"
        )
        relay.counters[f"hops_{reach}"].inc()
        relay.send(dest_proxy, "hop", (rid, path, idx + 1), delay=delay)


@dataclass
class ShardLoadResult:
    """Aggregated outcome of one :class:`UniformTraffic` run."""

    proxies: int
    clusters: int
    shards: int
    workers: int
    events: int
    wall_seconds: float
    requests: int
    completed: int
    hops_intra: int
    hops_cross: int
    windows: int
    exchanged: int

    @property
    def event_rate(self) -> float:
        """Events per wall-clock second."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def locality(self) -> float:
        """Fraction of hop messages that stayed shard-local."""
        hops = self.hops_intra + self.hops_cross
        return self.hops_intra / hops if hops else 1.0

    @property
    def completed_ratio(self) -> float:
        """Completed / issued requests."""
        return self.completed / self.requests if self.requests else 1.0


def run_shard_load(
    state: ColumnarOverlayState,
    *,
    shards: int,
    workers: Optional[int] = None,
    period: float = 500.0,
    duration: float = 2000.0,
    drain: Optional[float] = None,
    seed: int = 0,
    lookahead: Optional[float] = None,
) -> ShardLoadResult:
    """Run :class:`UniformTraffic` over *state* and aggregate the counters.

    *drain* is the extra horizon past the last issue instant; the default
    guarantees completion — every request walks at most 3 hops, each at
    most the coordinate bounding-box diagonal.
    """
    from repro.netsim.shard import run_sharded

    if drain is None:
        span = state.coords.max(axis=0) - state.coords.min(axis=0)
        drain = 3.0 * float(np.linalg.norm(span))
    plan = ShardPlan.from_state(state, shards, lookahead=lookahead)
    program = UniformTraffic(state, period=period, duration=duration, seed=seed)
    outcome = run_sharded(
        plan, program, until=duration + drain, workers=workers
    )
    totals = {"requests": 0, "completed": 0, "hops_intra": 0, "hops_cross": 0}
    for result in outcome.results:
        for key in totals:
            totals[key] += result[key]
    return ShardLoadResult(
        proxies=state.size,
        clusters=state.cluster_count,
        shards=outcome.shards,
        workers=outcome.workers,
        events=outcome.events,
        wall_seconds=outcome.wall_seconds,
        requests=totals["requests"],
        completed=totals["completed"],
        hops_intra=totals["hops_intra"],
        hops_cross=totals["hops_cross"],
        windows=outcome.windows,
        exchanged=outcome.exchanged,
    )
