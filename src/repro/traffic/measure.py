"""Steady-state measurement for sustained traffic runs.

The engine records one :class:`RequestRecord` per issued request; this
module turns those records into the numbers the ROADMAP's scale claims
are stated in: offered vs. completed load, sojourn-time quantiles
(p50/p95/p99) with warmup trimming, in-flight session statistics, and a
rate-sweep saturation finder.

All quantities are measured on the *simulated* clock, so every number
here is deterministic for a given config + seed — which is what lets the
benchmark gate (``check_bench_regression.py``) compare them across
runner hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.util.errors import TrafficError


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Exact linear-interpolation quantile of an already-sorted sequence."""
    if not sorted_values:
        return float("nan")
    if not 0.0 <= q <= 1.0:
        raise TrafficError(f"quantile must be in [0, 1], got {q}")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


@dataclass
class RequestRecord:
    """Fate of one open-loop request."""

    rid: int
    session: int
    issued_at: float
    routed: bool = False
    infeasible: bool = False
    completed_at: Optional[float] = None

    @property
    def sojourn(self) -> Optional[float]:
        """Issue-to-completion time (queueing + routing + delivery), or None."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


@dataclass
class SteadyStateCollector:
    """Accumulates per-request and per-session outcomes during a run."""

    warmup: float
    horizon: float
    records: List[RequestRecord] = field(default_factory=list)
    session_arrivals: int = 0
    session_admissions: int = 0
    session_rejections: int = 0
    in_flight_samples: List[int] = field(default_factory=list)

    def request(self, record: RequestRecord) -> None:
        self.records.append(record)

    def sample_in_flight(self, value: int) -> None:
        self.in_flight_samples.append(value)

    # -- windows -------------------------------------------------------------

    def window(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[RequestRecord]:
        """Records issued inside ``[start, end]`` (defaults: warmup..horizon)."""
        start = self.warmup if start is None else start
        end = self.horizon if end is None else end
        return [r for r in self.records if start <= r.issued_at <= end]

    def continuity(self, start: float, end: float) -> float:
        """Completed fraction of the requests issued in ``[start, end]``.

        The delivery-continuity measure for fault windows: 1.0 means every
        request issued while the faults were acting still completed.
        """
        window = self.window(start, end)
        if not window:
            return float("nan")
        return sum(1 for r in window if r.completed_at is not None) / len(window)


@dataclass(frozen=True)
class SteadyStateReport:
    """The steady-state summary of one sustained-traffic run."""

    duration: float
    warmup: float
    session_arrivals: int
    session_admissions: int
    session_rejections: int
    requests_offered: int
    requests_completed: int
    requests_infeasible: int
    requests_lost: int
    #: simulated requests per second inside the measurement window
    offered_rate: float
    completed_rate: float
    #: admission_fraction * delivered_fraction — the end-to-end success ratio
    goodput_ratio: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    in_flight_peak: int
    in_flight_mean: float

    @property
    def admission_fraction(self) -> float:
        if self.session_arrivals == 0:
            return float("nan")
        return self.session_admissions / self.session_arrivals

    @property
    def delivered_fraction(self) -> float:
        if self.requests_offered == 0:
            return float("nan")
        return self.requests_completed / self.requests_offered

    def to_dict(self) -> Dict[str, float]:
        return {
            "duration": self.duration,
            "warmup": self.warmup,
            "session_arrivals": self.session_arrivals,
            "session_admissions": self.session_admissions,
            "session_rejections": self.session_rejections,
            "requests_offered": self.requests_offered,
            "requests_completed": self.requests_completed,
            "requests_infeasible": self.requests_infeasible,
            "requests_lost": self.requests_lost,
            "offered_rate": self.offered_rate,
            "completed_rate": self.completed_rate,
            "goodput_ratio": self.goodput_ratio,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "in_flight_peak": self.in_flight_peak,
            "in_flight_mean": self.in_flight_mean,
        }


def summarize(collector: SteadyStateCollector) -> SteadyStateReport:
    """Fold a collector into a :class:`SteadyStateReport` (warmup-trimmed)."""
    window = collector.window()
    span = max(collector.horizon - collector.warmup, 1e-9)
    completed = [r for r in window if r.completed_at is not None]
    sojourns = sorted(r.sojourn for r in completed)  # type: ignore[misc]
    infeasible = sum(1 for r in window if r.infeasible)
    lost = len(window) - len(completed) - infeasible
    samples = collector.in_flight_samples
    admissions = collector.session_admissions
    arrivals = collector.session_arrivals
    admission = admissions / arrivals if arrivals else 1.0
    delivered = len(completed) / len(window) if window else 0.0
    return SteadyStateReport(
        duration=collector.horizon,
        warmup=collector.warmup,
        session_arrivals=arrivals,
        session_admissions=admissions,
        session_rejections=collector.session_rejections,
        requests_offered=len(window),
        requests_completed=len(completed),
        requests_infeasible=infeasible,
        requests_lost=lost,
        offered_rate=len(window) / span * 1000.0,
        completed_rate=len(completed) / span * 1000.0,
        goodput_ratio=admission * delivered,
        latency_p50=quantile(sojourns, 0.50),
        latency_p95=quantile(sojourns, 0.95),
        latency_p99=quantile(sojourns, 0.99),
        latency_mean=sum(sojourns) / len(sojourns) if sojourns else float("nan"),
        in_flight_peak=max(samples) if samples else 0,
        in_flight_mean=sum(samples) / len(samples) if samples else 0.0,
    )


# -- rate sweep / saturation finder ------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a rate sweep."""

    rate: float
    report: SteadyStateReport


@dataclass(frozen=True)
class RateSweepResult:
    """Outcome of a rate sweep: per-rate reports plus the saturation verdict."""

    points: List[SweepPoint]
    #: first swept rate at which the system is saturated (None: never)
    saturation_rate: Optional[float]
    goodput_floor: float
    latency_factor: float
    base_p95: float

    def rows(self) -> List[List[str]]:
        """ASCII-table rows (rate, goodput, p50/p95/p99, in-flight peak)."""
        out = []
        for point in self.points:
            r = point.report
            mark = (
                " *saturated*"
                if self.saturation_rate is not None
                and point.rate >= self.saturation_rate
                else ""
            )
            out.append([
                f"{point.rate:.4g}{mark}",
                f"{r.offered_rate:.1f}",
                f"{r.completed_rate:.1f}",
                f"{r.goodput_ratio:.3f}",
                f"{r.latency_p50:.1f}",
                f"{r.latency_p95:.1f}",
                f"{r.latency_p99:.1f}",
                f"{r.in_flight_peak}",
            ])
        return out


def rate_sweep(
    framework,
    rates: Sequence[float],
    *,
    config=None,
    seed: int = 0,
    router=None,
    goodput_floor: float = 0.9,
    latency_factor: float = 3.0,
) -> RateSweepResult:
    """Run the engine across *rates* and locate the saturation point.

    A rate is *saturated* when its goodput ratio falls below
    ``goodput_floor`` or its p95 sojourn exceeds ``latency_factor`` times
    the lowest swept rate's p95 (the unloaded baseline). One router is
    shared across points (routing results are load-independent, so this
    only saves precompute); each point gets a fresh simulator and the same
    seed so points differ only in arrival rate.
    """
    from repro.traffic.engine import TrafficConfig, TrafficEngine
    from repro.traffic.arrivals import Poisson

    if not rates or any(r <= 0 for r in rates):
        raise TrafficError("rate_sweep needs a non-empty list of positive rates")
    if sorted(rates) != list(rates):
        raise TrafficError("sweep rates must be increasing")
    config = config if config is not None else TrafficConfig()
    if router is None:
        router = framework.cached_hierarchical_router()

    points: List[SweepPoint] = []
    for rate in rates:
        arrival = (
            replace(config.arrival, rate=rate)
            if isinstance(config.arrival, Poisson)
            else Poisson(rate=rate, shapes=config.arrival.shapes)
        )
        engine = TrafficEngine(
            framework,
            replace(config, arrival=arrival),
            router=router,
            seed=seed,
        )
        points.append(SweepPoint(rate=rate, report=engine.run()))

    base_p95 = points[0].report.latency_p95
    saturation: Optional[float] = None
    for point in points:
        report = point.report
        latency_blown = (
            base_p95 == base_p95  # not NaN
            and report.latency_p95 == report.latency_p95
            and report.latency_p95 > latency_factor * base_p95
        )
        if report.goodput_ratio < goodput_floor or latency_blown:
            saturation = point.rate
            break
    return RateSweepResult(
        points=points,
        saturation_rate=saturation,
        goodput_floor=goodput_floor,
        latency_factor=latency_factor,
        base_p95=base_p95,
    )
