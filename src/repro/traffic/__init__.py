"""repro.traffic — open-workload traffic engine for sustained session load.

The harness the ROADMAP's scale claims are measured against: open-loop
client arrivals (Poisson / MMPP, diurnal and flash-crowd shaping),
session models with lifetimes and request cadences, micro-batched routing
through ``route_many``, hop-by-hop data-plane delivery that composes with
``repro.faults``, and steady-state measurement (offered vs. completed
load, latency quantiles, saturation finding).

Quick start::

    from repro.core import HFCFramework
    from repro.traffic import Poisson, TrafficConfig, TrafficEngine

    framework = HFCFramework.build(proxy_count=100, seed=7)
    engine = TrafficEngine(
        framework, TrafficConfig(arrival=Poisson(rate=0.02)), seed=1
    )
    report = engine.run()
    print(report.completed_rate, report.latency_p95)
"""

from repro.traffic.arrivals import (
    MMPP,
    ArrivalProcess,
    Diurnal,
    FlashCrowd,
    Poisson,
    RateShape,
)
from repro.traffic.engine import (
    SOJOURN_BUCKETS,
    TrafficConfig,
    TrafficEngine,
    traffic_proxy,
)
from repro.traffic.measure import (
    RateSweepResult,
    RequestRecord,
    SteadyStateCollector,
    SteadyStateReport,
    SweepPoint,
    quantile,
    rate_sweep,
    summarize,
)
from repro.traffic.scenarios import TrafficFaultResult, run_traffic_under_faults
from repro.traffic.sessions import SessionConfig

__all__ = [
    "MMPP",
    "SOJOURN_BUCKETS",
    "ArrivalProcess",
    "Diurnal",
    "FlashCrowd",
    "Poisson",
    "RateShape",
    "RateSweepResult",
    "RequestRecord",
    "SessionConfig",
    "SteadyStateCollector",
    "SteadyStateReport",
    "SweepPoint",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficFaultResult",
    "quantile",
    "rate_sweep",
    "run_traffic_under_faults",
    "summarize",
    "traffic_proxy",
]
