"""The open-loop traffic engine: sustained session load on the event simulator.

Unlike the batch workload (``experiments/workload.py``), which issues one
closed set of requests, the engine generates *client arrivals as events*:

1. an arrival process (:mod:`repro.traffic.arrivals`) schedules session
   arrivals on the shared :class:`~repro.netsim.eventsim.Simulator`;
2. each admitted session picks an access proxy, draws a lifetime and a
   request cadence (:mod:`repro.traffic.sessions`), and issues requests
   until it ends — request shapes follow the paper's Section 6.2 model
   (4-10 slots, Zipf or uniform service popularity via the shared
   :class:`~repro.util.sampling.PopularitySampler`);
3. issued requests queue into micro-batches that are flushed through the
   router's shared-precompute ``route_many_detailed`` every
   ``batch_interval`` ms;
4. routed requests stream hop-by-hop over the data plane: one
   ``traffic_data`` message per overlay hop through ``Simulator.send`` —
   which means a :class:`~repro.faults.injector.FaultInjector` installed
   on the same simulator drops/delays/duplicates traffic exactly like
   protocol messages, so sustained-load-under-faults scenarios run
   unmodified. Service hops additionally pass through a per-proxy FIFO
   server (``service_time`` each), which is what makes latency grow with
   load and gives the rate sweep a real saturation point.

Determinism: every stochastic draw comes from substreams spawned from one
seed (arrivals / sessions / workload), and the simulator itself is
deterministic — the same config + seed yields a byte-identical request
trace (:meth:`TrafficEngine.dump_trace`), the same discipline
``repro.faults`` follows for fault traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.workload import random_service_graph
from repro.netsim.eventsim import Message, Process, Simulator
from repro.overlay.network import ProxyId
from repro.routing.path import ServicePath
from repro.services.request import ServiceRequest
from repro.traffic.arrivals import ArrivalProcess, ArrivalSampler, Poisson
from repro.traffic.measure import (
    RequestRecord,
    SteadyStateCollector,
    SteadyStateReport,
    summarize,
)
from repro.traffic.sessions import SessionConfig
from repro.util.errors import TrafficError
from repro.util.rng import RngLike, ensure_rng, spawn
from repro.util.sampling import PopularitySampler

#: sojourn-time histogram buckets (simulated ms)
SOJOURN_BUCKETS: Tuple[float, ...] = (
    5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

#: delivery simulation modes
DELIVERY_MODES = ("hop", "analytic")


def traffic_proxy(address: Any) -> Any:
    """Map a traffic relay address ``("traffic", proxy)`` to its proxy id.

    The canonical ``resolve`` argument for
    :meth:`repro.faults.injector.FaultInjector.install` when traffic and
    protocol share a simulator: fault specs name proxies, and this lets
    crash/partition/loss matching see through the relay namespace.
    """
    if isinstance(address, tuple) and len(address) == 2 and address[0] == "traffic":
        return address[1]
    return address


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of one sustained-traffic run (all times in simulated ms)."""

    #: session arrival process (Poisson / MMPP, optionally shaped)
    arrival: ArrivalProcess = field(default_factory=Poisson)
    #: arrivals are generated inside [0, duration]
    duration: float = 10_000.0
    #: measurement window start (transient trimming)
    warmup: float = 1_000.0
    #: extra simulated time after `duration` for in-flight work to finish
    drain: float = 2_000.0
    #: micro-batch flush period for the shared-precompute router
    batch_interval: float = 50.0
    #: admission cap on concurrently open sessions
    max_in_flight: int = 512
    #: per-service processing time at the serving proxy's FIFO server
    service_time: float = 1.0
    #: "hop" streams per-hop messages through the simulator (composes with
    #: fault injection); "analytic" schedules one completion per request
    #: (fast path for very large loads, no per-hop messages)
    delivery: str = "hop"
    session: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TrafficError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise TrafficError("warmup must be in [0, duration)")
        if self.drain < 0:
            raise TrafficError("drain must be >= 0")
        if self.batch_interval <= 0:
            raise TrafficError("batch_interval must be positive")
        if self.max_in_flight < 1:
            raise TrafficError("max_in_flight must be >= 1")
        if self.service_time < 0:
            raise TrafficError("service_time must be >= 0")
        if self.delivery not in DELIVERY_MODES:
            raise TrafficError(
                f"delivery must be one of {DELIVERY_MODES}, got {self.delivery!r}"
            )


@dataclass
class _LiveSession:
    sid: int
    access_proxy: ProxyId
    ends_at: float


class _TrafficRelay(Process):
    """Per-proxy data-plane relay: forward a request's flow one hop."""

    def __init__(self, engine: "TrafficEngine", proxy: ProxyId) -> None:
        super().__init__(address=("traffic", proxy))
        self.engine = engine
        self.proxy = proxy

    def receive(self, message: Message) -> None:
        self.engine._hop(message.payload[0], message.payload[1], self)


class TrafficEngine:
    """Drives open-loop session traffic over one framework's overlay.

    Args:
        framework: the built :class:`~repro.core.framework.HFCFramework`.
        config: the run's :class:`TrafficConfig`.
        sim: simulator to run on; a private one is created when omitted.
            Pass a protocol's simulator (plus an installed fault injector
            with ``resolve=traffic_proxy``) for load-under-faults runs.
        router: any router exposing ``route_many_detailed``; defaults to a
            fresh cached hierarchical router.
        seed: master seed; arrivals, session draws, and the request mix
            each get an independent substream.
        destinations: candidate access proxies for sessions (e.g. an
            :class:`~repro.experiments.environments.Environment`'s
            ``client_proxies``); defaults to all overlay proxies.
    """

    def __init__(
        self,
        framework,
        config: Optional[TrafficConfig] = None,
        *,
        sim: Optional[Simulator] = None,
        router=None,
        seed: RngLike = 0,
        destinations: Optional[Sequence[ProxyId]] = None,
    ) -> None:
        self.framework = framework
        self.config = config or TrafficConfig()
        self.sim = sim if sim is not None else Simulator()
        self.router = (
            router if router is not None else framework.cached_hierarchical_router()
        )
        if not hasattr(self.router, "route_many_detailed"):
            raise TrafficError("router must expose route_many_detailed")
        rng = ensure_rng(seed)
        self._arrival_rng = spawn(rng, "traffic.arrivals")
        self._session_rng = spawn(rng, "traffic.sessions")
        self._workload_rng = spawn(rng, "traffic.workload")
        self._sampler: ArrivalSampler = self.config.arrival.sampler(self._arrival_rng)
        session = self.config.session
        self._service_sampler = PopularitySampler(
            list(framework.catalog.names),
            popularity=session.popularity,
            exponent=session.zipf_exponent,
        )
        self._proxies: List[ProxyId] = list(framework.overlay.proxies)
        self._destinations: List[ProxyId] = (
            list(destinations) if destinations else list(self._proxies)
        )

        self._origin: float = 0.0
        self._started = False
        self._finished = False
        self._next_sid = 0
        self._next_rid = 0
        self._live: Dict[int, _LiveSession] = {}
        self._pending: List[Tuple[RequestRecord, ServiceRequest]] = []
        self._flows: Dict[int, ServicePath] = {}
        self._busy_until: Dict[ProxyId, float] = {}
        self._relays: Dict[ProxyId, _TrafficRelay] = {}
        self.trace: List[Dict[str, Any]] = []
        self.collector = SteadyStateCollector(
            warmup=self.config.warmup, horizon=self.config.duration
        )
        self.report: Optional[SteadyStateReport] = None

        registry = self.sim.telemetry.registry
        self._m_arrivals = registry.counter("traffic.arrivals")
        self._m_admitted = registry.counter("traffic.sessions", outcome="admitted")
        self._m_rejected = registry.counter("traffic.sessions", outcome="rejected")
        self._m_requests = registry.counter("traffic.requests")
        self._m_completed = registry.counter("traffic.completed")
        self._m_infeasible = registry.counter("traffic.rejected", reason="infeasible")
        self._m_lost = registry.counter("traffic.lost")
        self._g_in_flight = registry.gauge("traffic.in_flight")
        self._h_sojourn = registry.histogram("traffic.sojourn", SOJOURN_BUCKETS)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Install the engine's event sources on the simulator."""
        if self._started:
            raise TrafficError("engine already started")
        self._started = True
        self._origin = self.sim.now
        horizon = self._horizon
        self.collector.warmup = self._origin + self.config.warmup
        self.collector.horizon = horizon
        first = self._sampler.next_after(self._origin)
        if first <= horizon:
            self.sim.schedule(first - self.sim.now, self._arrive)
        self.sim.schedule_every(
            self.config.batch_interval,
            self._flush,
            until=horizon + self.config.drain + self.config.batch_interval,
        )
        self.sim.schedule_every(
            self.config.batch_interval,
            lambda: self.collector.sample_in_flight(len(self._live)),
            until=horizon,
        )

    def run(self) -> SteadyStateReport:
        """Start, run to the drain horizon, and summarize (owned-sim mode)."""
        self.start()
        self.sim.run_until(self._horizon + self.config.drain)
        return self.finish()

    def finish(self, *, publish: bool = True) -> SteadyStateReport:
        """Flush stragglers, account losses, and fold the steady-state report."""
        if self._finished:
            assert self.report is not None
            return self.report
        self._finished = True
        self._flush()
        for record in self.collector.records:
            if record.completed_at is None and not record.infeasible:
                self._m_lost.inc()
        self.report = summarize(self.collector)
        if publish:
            self.sim.telemetry.publish()
        return self.report

    @property
    def _horizon(self) -> float:
        return self._origin + self.config.duration

    # -- session lifecycle --------------------------------------------------------

    def _arrive(self) -> None:
        now = self.sim.now
        sid = self._next_sid
        self._next_sid += 1
        self._m_arrivals.inc()
        self.collector.session_arrivals += 1
        self._trace("arrival", session=sid)

        if len(self._live) >= self.config.max_in_flight:
            self._m_rejected.inc()
            self.collector.session_rejections += 1
            self._trace("reject", session=sid, reason="capacity")
        else:
            rng = self._session_rng
            access = rng.choice(self._destinations)
            lifetime = self.config.session.draw_lifetime(rng)
            live = _LiveSession(sid=sid, access_proxy=access, ends_at=now + lifetime)
            self._live[sid] = live
            self._m_admitted.inc()
            self.collector.session_admissions += 1
            self._g_in_flight.set(len(self._live))
            self._trace("admit", session=sid, access=access, lifetime=lifetime)
            self.sim.schedule(lifetime, lambda: self._end_session(sid))
            self._issue(live)

        nxt = self._sampler.next_after(now)
        if nxt <= self._horizon:
            self.sim.schedule(nxt - now, self._arrive)

    def _end_session(self, sid: int) -> None:
        if self._live.pop(sid, None) is not None:
            self._g_in_flight.set(len(self._live))
            self._trace("session_end", session=sid)

    def _issue(self, live: _LiveSession) -> None:
        now = self.sim.now
        if live.sid not in self._live or now > self._horizon:
            return
        rng = self._workload_rng
        session = self.config.session
        destination = live.access_proxy
        source = rng.choice(self._proxies)
        if source == destination:
            candidates = [p for p in self._proxies if p != destination]
            source = rng.choice(candidates)
        length = session.draw_length(rng)
        nonlinear = rng.random() < session.nonlinear_fraction
        sg = random_service_graph(
            self.framework.catalog,
            length,
            nonlinear=nonlinear,
            sampler=self._service_sampler,
            seed=rng,
        )
        rid = self._next_rid
        self._next_rid += 1
        request = ServiceRequest(source, sg, destination)
        record = RequestRecord(rid=rid, session=live.sid, issued_at=now)
        self.collector.request(record)
        self._pending.append((record, request))
        self._m_requests.inc()
        self._trace(
            "request",
            req=rid,
            session=live.sid,
            source=source,
            destination=destination,
            services=[sg.service_of(s) for s in sg.topological_order()],
        )
        gap = session.draw_gap(self._session_rng)
        if now + gap <= live.ends_at:
            self.sim.schedule(gap, lambda: self._issue(live))

    # -- routing (micro-batched) ---------------------------------------------------

    def _flush(self) -> None:
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        result = self.router.route_many_detailed([req for _, req in batch])
        for (record, _), path, error in zip(batch, result.paths, result.errors):
            if error is not None:
                record.infeasible = True
                self._m_infeasible.inc()
                self._trace("infeasible", req=record.rid)
                continue
            assert path is not None
            record.routed = True
            self._dispatch(record.rid, path)

    # -- data plane -----------------------------------------------------------------

    def _dispatch(self, rid: int, path: ServicePath) -> None:
        if self.config.delivery == "analytic":
            self._dispatch_analytic(rid, path)
            return
        self._flows[rid] = path
        first = path.hops[0].proxy
        self._ensure_relay(first)
        self.sim.send(
            Message(("traffic", first), ("traffic", first), "traffic_data", (rid, 0)),
            delay=0.0,
        )

    def _ensure_relay(self, proxy: ProxyId) -> None:
        if proxy not in self._relays:
            relay = _TrafficRelay(self, proxy)
            self._relays[proxy] = relay
            self.sim.register(relay)

    def _service_delay(self, proxy: ProxyId, at: float) -> float:
        """FIFO wait plus service time at *proxy*'s server, starting at *at*."""
        busy = self._busy_until.get(proxy, 0.0)
        wait = busy - at if busy > at else 0.0
        self._busy_until[proxy] = at + wait + self.config.service_time
        return wait + self.config.service_time

    def _hop(self, rid: int, index: int, relay: _TrafficRelay) -> None:
        path = self._flows.get(rid)
        if path is None:
            return  # duplicate delivery of an already-completed flow
        now = self.sim.now
        hop = path.hops[index]
        delay = 0.0
        if hop.service is not None:
            delay += self._service_delay(hop.proxy, now)
        if index == len(path.hops) - 1:
            self.sim.schedule(delay, lambda: self._complete(rid))
            return
        nxt = path.hops[index + 1].proxy
        self._ensure_relay(nxt)
        delay += self.framework.overlay.true_delay(hop.proxy, nxt)
        relay.send(("traffic", nxt), "traffic_data", (rid, index + 1), delay=delay)

    def _dispatch_analytic(self, rid: int, path: ServicePath) -> None:
        """Closed-form delivery: one completion event per request.

        Latency is the unloaded path time — link delays plus one
        ``service_time`` per service hop, with no cross-request queueing
        (claiming servers at walk time would charge spurious waits, since
        walks visit proxies out of arrival order). The fast path for
        offered-load accounting at very large scale; saturation still
        manifests through the admission cap. Use ``delivery="hop"`` for
        latency-under-load studies and fault composition.
        """
        now = self.sim.now
        t = now
        for index, hop in enumerate(path.hops):
            if hop.service is not None:
                t += self.config.service_time
            if index < len(path.hops) - 1:
                nxt = path.hops[index + 1].proxy
                t += self.framework.overlay.true_delay(hop.proxy, nxt)
        self._flows[rid] = path
        self.sim.schedule(t - now, lambda: self._complete(rid))

    def _complete(self, rid: int) -> None:
        path = self._flows.pop(rid, None)
        if path is None:
            return
        record = self.collector.records[rid]
        record.completed_at = self.sim.now
        sojourn = record.sojourn
        assert sojourn is not None
        self._m_completed.inc()
        self._h_sojourn.observe(sojourn)
        self._trace("complete", req=rid, latency=sojourn)

    # -- trace ----------------------------------------------------------------------

    def _trace(self, event: str, **fields: Any) -> None:
        entry: Dict[str, Any] = {"t": self.sim.now, "event": event}
        entry.update(fields)
        self.trace.append(entry)

    def dump_trace(self, path: str) -> int:
        """Write the request trace as JSON lines; returns the entry count.

        Byte-identical across runs with the same config + seed — the
        determinism contract the trace tests assert.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.trace:
                fh.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")
        return len(self.trace)
