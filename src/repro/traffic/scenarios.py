"""Sustained-load-under-faults scenarios.

Composes the three PR-5/PR-6 layers on one simulator: the state protocol,
a :class:`~repro.faults.injector.FaultInjector` executing a seeded fault
plan, and the open-loop :class:`~repro.traffic.engine.TrafficEngine`.
Traffic data messages travel through the same delivery interceptor as
protocol messages (the injector is installed with
``resolve=traffic_proxy`` so relay addresses map to proxies), which means
a crash or partition silently kills in-flight requests — and the
*delivery continuity* number reports how much of the offered load still
completed while the faults were acting.

The convergence auditor runs unchanged on top: the scenario passes only
if the control plane reconverges within its K-period budget while the
data plane is under load.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.faults.auditor import ConvergenceAuditor, FaultScenarioResult
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.state.protocol import StateDistributionProtocol
from repro.traffic.engine import TrafficConfig, TrafficEngine, traffic_proxy
from repro.traffic.measure import SteadyStateReport
from repro.util.rng import RngLike


@dataclass(frozen=True)
class TrafficFaultResult:
    """Joint outcome: auditor verdicts plus traffic continuity."""

    scenario: FaultScenarioResult
    report: SteadyStateReport
    #: completed fraction of requests issued during the fault window
    fault_continuity: float
    #: completed fraction of requests issued before the first fault
    calm_continuity: float

    @property
    def passed(self) -> bool:
        return self.scenario.passed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "fault_continuity": self.fault_continuity,
            "calm_continuity": self.calm_continuity,
            "reconverged_at": self.scenario.reconverged_at,
            "deadline": self.scenario.deadline,
            "checks": [c.to_dict() for c in self.scenario.checks],
            "traffic": self.report.to_dict(),
        }


def run_traffic_under_faults(
    framework,
    plan: FaultPlan,
    *,
    config: Optional[TrafficConfig] = None,
    traffic_seed: RngLike = 0,
    k_periods: int = 3,
    mode: str = "delta",
    refresh_every: int = 4,
    aggregate_period: float = 1000.0,
    protocol_seed: RngLike = None,
    probes: int = 6,
    check_interval: float = 250.0,
    sim: Optional[Any] = None,
) -> TrafficFaultResult:
    """Run sustained traffic while *plan* executes, under the auditor.

    Mirrors :func:`repro.faults.run_fault_scenario` (same protocol wiring,
    restart hook, and audit), with a traffic engine attached to the same
    simulator. The traffic duration is stretched to cover the auditor's
    settle window so load spans the whole fault-and-recovery timeline.

    *sim* accepts a pre-built simulator — e.g. a sharded one from
    :meth:`HFCFramework.simulator` — so the whole scenario (protocol,
    injector, traffic) runs on it; results are shard-count-invariant.
    """
    protocol = StateDistributionProtocol(
        framework.hfc,
        seed=protocol_seed if protocol_seed is not None else plan.seed,
        mode=mode,
        refresh_every=refresh_every,
        aggregate_period=aggregate_period,
        sim=sim,
    )

    def on_restart(spec: Any) -> None:
        if spec.wipe_state:
            protocol.wipe_state(spec.proxy, services=spec.services_after)
        elif spec.services_after is not None:
            protocol.update_local_services(spec.proxy, spec.services_after)

    injector = FaultInjector(plan).install(
        protocol.sim, on_restart=on_restart, resolve=traffic_proxy
    )
    auditor = ConvergenceAuditor(protocol, injector, k_periods=k_periods)

    config = config or TrafficConfig()
    # the audit runs to deadline + 2 refresh periods; keep arrivals flowing
    # through all of it (plus one period of slack for the final settle)
    needed = auditor.deadline + 3 * protocol.refresh_period
    if config.duration < needed:
        config = replace(config, duration=needed)

    engine = TrafficEngine(framework, config, sim=protocol.sim, seed=traffic_seed)
    engine.start()
    scenario = auditor.audit(
        framework, probes=probes, check_interval=check_interval
    )
    report = engine.finish()

    first_fault = plan.first_fault_start
    fault_continuity = engine.collector.continuity(first_fault, auditor.horizon)
    calm_continuity = engine.collector.continuity(engine.collector.warmup, first_fault)
    return TrafficFaultResult(
        scenario=scenario,
        report=report,
        fault_continuity=fault_continuity,
        calm_continuity=calm_continuity,
    )
