"""Session models: how long a client stays and how often it asks.

A *session* is one client's continuous engagement with the overlay: it
arrives (see :mod:`repro.traffic.arrivals`), attaches to an access proxy,
issues service requests at its cadence for its lifetime, and leaves. The
request mix reuses the paper's Section 6.2 model via the shared helpers:
4-10 service slots per request and uniform-or-Zipf service popularity
(:class:`repro.util.sampling.PopularitySampler` — the same weighting code
the batch workload uses).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.util.errors import TrafficError

#: lifetime / cadence distributions understood by :class:`SessionConfig`
DISTRIBUTIONS = ("exponential", "fixed", "lognormal")


def _draw(distribution: str, mean: float, sigma: float, rng: random.Random) -> float:
    if distribution == "fixed":
        return mean
    if distribution == "exponential":
        return rng.expovariate(1.0 / mean)
    # lognormal with the requested mean: mu = ln(mean) - sigma^2/2
    return rng.lognormvariate(math.log(mean) - sigma * sigma / 2.0, sigma)


@dataclass(frozen=True)
class SessionConfig:
    """Per-session behaviour: lifetime, request cadence, request mix."""

    #: mean session lifetime (simulated ms) and its distribution
    mean_lifetime: float = 2_000.0
    lifetime: str = "exponential"
    lifetime_sigma: float = 0.5
    #: mean gap between a session's consecutive requests, and its shape
    mean_gap: float = 400.0
    cadence: str = "exponential"
    gap_sigma: float = 0.5
    #: paper Section 6.2 request-length range (service slots per request)
    min_length: int = 4
    max_length: int = 10
    #: fraction of requests carrying a non-linear (branching) SG
    nonlinear_fraction: float = 0.0
    #: service-popularity skew: "uniform" or "zipf" (shared sampler)
    popularity: str = "zipf"
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0 or self.mean_gap <= 0:
            raise TrafficError("mean_lifetime and mean_gap must be positive")
        if self.lifetime not in DISTRIBUTIONS or self.cadence not in DISTRIBUTIONS:
            raise TrafficError(
                f"lifetime/cadence must be one of {DISTRIBUTIONS}, got "
                f"{self.lifetime!r}/{self.cadence!r}"
            )
        if self.lifetime_sigma <= 0 or self.gap_sigma <= 0:
            raise TrafficError("lognormal sigmas must be positive")
        if not 1 <= self.min_length <= self.max_length:
            raise TrafficError("invalid request length bounds")
        if not 0.0 <= self.nonlinear_fraction <= 1.0:
            raise TrafficError("nonlinear_fraction must be in [0, 1]")
        if self.popularity not in ("uniform", "zipf"):
            raise TrafficError("popularity must be 'uniform' or 'zipf'")
        if self.zipf_exponent <= 0:
            raise TrafficError("zipf_exponent must be positive")

    # -- draws ---------------------------------------------------------------

    def draw_lifetime(self, rng: random.Random) -> float:
        """One session lifetime (ms)."""
        return _draw(self.lifetime, self.mean_lifetime, self.lifetime_sigma, rng)

    def draw_gap(self, rng: random.Random) -> float:
        """One inter-request gap (ms) within a session."""
        return _draw(self.cadence, self.mean_gap, self.gap_sigma, rng)

    def draw_length(self, rng: random.Random) -> int:
        """One request length (service slots), uniform in the paper's range."""
        return rng.randint(self.min_length, self.max_length)

    def mean_requests(self) -> float:
        """Expected requests per session (1 at arrival + one per gap)."""
        return 1.0 + self.mean_lifetime / self.mean_gap
