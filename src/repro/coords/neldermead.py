"""Nelder-Mead simplex minimization, from scratch.

The paper (Section 3.1) maps measured Internet distances into a geometric
space "through some function minimization method [23]" — Nelder & Mead's 1965
downhill simplex. This module implements the standard algorithm with the
usual coefficients (reflection 1, expansion 2, contraction 1/2, shrink 1/2)
and adaptive termination on both simplex spread and function-value spread.

It is validated against ``scipy.optimize.minimize(method="Nelder-Mead")`` in
the test suite but has no runtime dependency beyond numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

Objective = Callable[[np.ndarray], float]


@dataclass
class MinimizeResult:
    """Outcome of a Nelder-Mead run.

    Attributes:
        x: best point found.
        fun: objective value at ``x``.
        iterations: simplex iterations performed.
        converged: True if tolerances were met before the iteration cap.
    """

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool


def nelder_mead(
    objective: Objective,
    x0: Sequence[float],
    *,
    initial_step: float = 1.0,
    xtol: float = 1e-6,
    ftol: float = 1e-9,
    max_iterations: int = 2000,
) -> MinimizeResult:
    """Minimize *objective* starting from *x0*.

    Args:
        objective: function of an ``(n,)`` numpy vector returning a float.
        x0: starting point, length n >= 1.
        initial_step: size of the initial simplex's per-axis offsets.
        xtol: terminate when the simplex's max vertex distance to the best
            vertex drops below this.
        ftol: terminate when the spread of function values across the simplex
            drops below this.
        max_iterations: hard iteration cap.
    """
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim != 1 or x0.size == 0:
        raise ValueError(f"x0 must be a non-empty 1-D vector, got shape {x0.shape}")
    n = x0.size

    # Initial simplex: x0 plus one offset vertex per axis.
    simplex = np.tile(x0, (n + 1, 1))
    for i in range(n):
        step = initial_step if x0[i] == 0 else initial_step * max(abs(x0[i]), 1.0) * 0.1
        simplex[i + 1, i] += step if step != 0 else initial_step
    values = np.array([objective(v) for v in simplex])

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
    iterations = 0
    converged = False
    while iterations < max_iterations:
        order = np.argsort(values, kind="stable")
        simplex, values = simplex[order], values[order]

        x_spread = np.max(np.abs(simplex[1:] - simplex[0]))
        f_spread = abs(values[-1] - values[0])
        if x_spread <= xtol and f_spread <= ftol:
            converged = True
            break

        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]

        reflected = centroid + alpha * (centroid - worst)
        f_reflected = objective(reflected)
        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = objective(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        else:
            contracted = centroid + rho * (worst - centroid)
            f_contracted = objective(contracted)
            if f_contracted < values[-1]:
                simplex[-1], values[-1] = contracted, f_contracted
            else:
                best = simplex[0]
                for i in range(1, n + 1):
                    simplex[i] = best + sigma * (simplex[i] - best)
                    values[i] = objective(simplex[i])
        iterations += 1

    order = np.argsort(values, kind="stable")
    simplex, values = simplex[order], values[order]
    return MinimizeResult(
        x=simplex[0].copy(),
        fun=float(values[0]),
        iterations=iterations,
        converged=converged,
    )


def minimize_with_restarts(
    objective: Objective,
    starts: Sequence[Sequence[float]],
    **kwargs,
) -> MinimizeResult:
    """Run :func:`nelder_mead` from each start and keep the best result.

    Simplex descent is local; the embedding objective is non-convex, so the
    library offers multi-start as the cheap robustness knob.
    """
    if len(starts) == 0:
        raise ValueError("starts must not be empty")
    best: Optional[MinimizeResult] = None
    for start in starts:
        result = nelder_mead(objective, start, **kwargs)
        if best is None or result.fun < best.fun:
            best = result
    assert best is not None
    return best
