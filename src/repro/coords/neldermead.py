"""Nelder-Mead simplex minimization, from scratch.

The paper (Section 3.1) maps measured Internet distances into a geometric
space "through some function minimization method [23]" — Nelder & Mead's 1965
downhill simplex. This module implements the standard algorithm with the
usual coefficients (reflection 1, expansion 2, contraction 1/2, shrink 1/2)
and adaptive termination on both simplex spread and function-value spread.

It is validated against ``scipy.optimize.minimize(method="Nelder-Mead")`` in
the test suite but has no runtime dependency beyond numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

Objective = Callable[[np.ndarray], float]


@dataclass
class MinimizeResult:
    """Outcome of a Nelder-Mead run.

    Attributes:
        x: best point found.
        fun: objective value at ``x``.
        iterations: simplex iterations performed.
        converged: True if tolerances were met before the iteration cap.
    """

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool


def nelder_mead(
    objective: Objective,
    x0: Sequence[float],
    *,
    initial_step: float = 1.0,
    xtol: float = 1e-6,
    ftol: float = 1e-9,
    max_iterations: int = 2000,
) -> MinimizeResult:
    """Minimize *objective* starting from *x0*.

    Args:
        objective: function of an ``(n,)`` numpy vector returning a float.
        x0: starting point, length n >= 1.
        initial_step: size of the initial simplex's per-axis offsets.
        xtol: terminate when the simplex's max vertex distance to the best
            vertex drops below this.
        ftol: terminate when the spread of function values across the simplex
            drops below this.
        max_iterations: hard iteration cap.
    """
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim != 1 or x0.size == 0:
        raise ValueError(f"x0 must be a non-empty 1-D vector, got shape {x0.shape}")
    n = x0.size

    # Initial simplex: x0 plus one offset vertex per axis.
    simplex = np.tile(x0, (n + 1, 1))
    for i in range(n):
        step = initial_step if x0[i] == 0 else initial_step * max(abs(x0[i]), 1.0) * 0.1
        simplex[i + 1, i] += step if step != 0 else initial_step
    values = np.array([objective(v) for v in simplex])

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
    iterations = 0
    converged = False
    while iterations < max_iterations:
        order = np.argsort(values, kind="stable")
        simplex, values = simplex[order], values[order]

        x_spread = np.max(np.abs(simplex[1:] - simplex[0]))
        f_spread = abs(values[-1] - values[0])
        if x_spread <= xtol and f_spread <= ftol:
            converged = True
            break

        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]

        reflected = centroid + alpha * (centroid - worst)
        f_reflected = objective(reflected)
        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = objective(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        else:
            contracted = centroid + rho * (worst - centroid)
            f_contracted = objective(contracted)
            if f_contracted < values[-1]:
                simplex[-1], values[-1] = contracted, f_contracted
            else:
                best = simplex[0]
                for i in range(1, n + 1):
                    simplex[i] = best + sigma * (simplex[i] - best)
                    values[i] = objective(simplex[i])
        iterations += 1

    order = np.argsort(values, kind="stable")
    simplex, values = simplex[order], values[order]
    return MinimizeResult(
        x=simplex[0].copy(),
        fun=float(values[0]),
        iterations=iterations,
        converged=converged,
    )


def minimize_with_restarts(
    objective: Objective,
    starts: Sequence[Sequence[float]],
    **kwargs,
) -> MinimizeResult:
    """Run :func:`nelder_mead` from each start and keep the best result.

    Simplex descent is local; the embedding objective is non-convex, so the
    library offers multi-start as the cheap robustness knob.
    """
    if len(starts) == 0:
        raise ValueError("starts must not be empty")
    best: Optional[MinimizeResult] = None
    for start in starts:
        result = nelder_mead(objective, start, **kwargs)
        if best is None or result.fun < best.fun:
            best = result
    assert best is not None
    return best


# -- batched descent ----------------------------------------------------------
#
# The GNP per-host step solves thousands of *independent* small minimizations
# (one k-variable problem per overlay proxy). Running them through the scalar
# loop above costs one Python-level simplex iteration per host per step; the
# batched variant below runs every host's iteration as one numpy operation
# over a (B, n+1, n) stack of simplexes.
#
# Each problem follows exactly the scalar control flow — same initial simplex,
# same stable sort, same reflect/expand/contract/shrink decisions, same
# per-problem convergence test — so for an objective whose batched evaluation
# applies the same elementwise arithmetic as its scalar form, the returned
# points are bit-identical to looping :func:`nelder_mead` per problem (the
# equivalence test suite asserts this).

BatchObjective = Callable[[np.ndarray, np.ndarray], np.ndarray]
"""Batched objective: ``(points (M, n), problem_index (M,)) -> values (M,)``.

``problem_index[r]`` names which of the B problems row ``r`` belongs to, so
per-problem data (e.g. each host's measured landmark delays) can be gathered
with one fancy index.
"""


@dataclass
class BatchMinimizeResult:
    """Outcome of a batched Nelder-Mead run over B independent problems.

    Attributes:
        x: best points, ``(B, n)``.
        fun: objective values at ``x``, ``(B,)``.
        iterations: simplex iterations performed per problem, ``(B,)``.
        converged: per-problem convergence flags, ``(B,)``.
    """

    x: np.ndarray
    fun: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


def _as_per_problem(value, count: int) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(count, float(arr))
    if arr.shape != (count,):
        raise ValueError(f"per-problem parameter must be scalar or ({count},), got {arr.shape}")
    return arr.astype(float, copy=True)


def nelder_mead_batch(
    objective: BatchObjective,
    x0s: np.ndarray,
    *,
    initial_step=1.0,
    xtol=1e-6,
    ftol=1e-9,
    max_iterations: int = 2000,
) -> BatchMinimizeResult:
    """Minimize B independent n-variable problems simultaneously.

    Args:
        objective: batched objective (see :data:`BatchObjective`).
        x0s: starting points, ``(B, n)``.
        initial_step: scalar or ``(B,)`` per-problem initial simplex step.
        xtol: scalar or ``(B,)`` simplex-spread tolerance.
        ftol: scalar or ``(B,)`` value-spread tolerance.
        max_iterations: hard iteration cap (shared, as in the scalar loop).

    Problems that converge are frozen in place while the rest keep
    iterating, so the per-step batch shrinks as hosts finish.
    """
    x0s = np.asarray(x0s, dtype=float)
    if x0s.ndim != 2 or x0s.shape[1] == 0:
        raise ValueError(f"x0s must be a non-empty (B, n) array, got shape {x0s.shape}")
    b, n = x0s.shape
    step0 = _as_per_problem(initial_step, b)
    xtol_arr = _as_per_problem(xtol, b)
    ftol_arr = _as_per_problem(ftol, b)

    # Initial simplexes: x0 plus one offset vertex per axis (scalar rule).
    simplex = np.repeat(x0s[:, None, :], n + 1, axis=1)
    per_axis = np.where(
        x0s == 0.0,
        step0[:, None],
        step0[:, None] * np.maximum(np.abs(x0s), 1.0) * 0.1,
    )
    per_axis = np.where(per_axis == 0.0, step0[:, None], per_axis)
    axis = np.arange(n)
    simplex[:, axis + 1, axis] += per_axis
    values = objective(
        simplex.reshape(b * (n + 1), n), np.repeat(np.arange(b), n + 1)
    ).reshape(b, n + 1)

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
    active = np.ones(b, dtype=bool)
    iterations = np.zeros(b, dtype=np.int64)
    converged = np.zeros(b, dtype=bool)
    it = 0
    while it < max_iterations and active.any():
        act = np.flatnonzero(active)
        sim_a = simplex[act]
        val_a = values[act]
        order = np.argsort(val_a, axis=1, kind="stable")
        val_a = np.take_along_axis(val_a, order, axis=1)
        sim_a = np.take_along_axis(sim_a, order[:, :, None], axis=1)
        simplex[act] = sim_a
        values[act] = val_a

        x_spread = np.max(np.abs(sim_a[:, 1:] - sim_a[:, :1]), axis=(1, 2))
        f_spread = np.abs(val_a[:, -1] - val_a[:, 0])
        done = (x_spread <= xtol_arr[act]) & (f_spread <= ftol_arr[act])
        if done.any():
            finished = act[done]
            converged[finished] = True
            iterations[finished] = it
            active[finished] = False
            keep = ~done
            act = act[keep]
            if act.size == 0:
                break
            sim_a = sim_a[keep]
            val_a = val_a[keep]

        centroid = sim_a[:, :-1, :].mean(axis=1)
        worst = sim_a[:, -1, :]
        reflected = centroid + alpha * (centroid - worst)
        f_reflected = objective(reflected, act)

        new_vertex = reflected.copy()
        new_value = f_reflected.copy()
        accept = (val_a[:, 0] <= f_reflected) & (f_reflected < val_a[:, -2])
        expand = f_reflected < val_a[:, 0]
        contract = ~(accept | expand)

        if expand.any():
            rows = np.flatnonzero(expand)
            expanded = centroid[rows] + gamma * (reflected[rows] - centroid[rows])
            f_expanded = objective(expanded, act[rows])
            better = f_expanded < f_reflected[rows]
            win = rows[better]
            new_vertex[win] = expanded[better]
            new_value[win] = f_expanded[better]

        shrink = np.empty(0, dtype=np.int64)
        if contract.any():
            rows = np.flatnonzero(contract)
            contracted = centroid[rows] + rho * (worst[rows] - centroid[rows])
            f_contracted = objective(contracted, act[rows])
            ok = f_contracted < val_a[rows, -1]
            win = rows[ok]
            new_vertex[win] = contracted[ok]
            new_value[win] = f_contracted[ok]
            shrink = rows[~ok]

        replace = np.ones(act.size, dtype=bool)
        replace[shrink] = False
        sim_a[replace, -1, :] = new_vertex[replace]
        val_a[replace, -1] = new_value[replace]

        if shrink.size:
            best = sim_a[shrink, :1, :]
            shrunk = best + sigma * (sim_a[shrink, 1:, :] - best)
            sim_a[shrink, 1:, :] = shrunk
            val_a[shrink, 1:] = objective(
                shrunk.reshape(-1, n), np.repeat(act[shrink], n)
            ).reshape(-1, n)

        simplex[act] = sim_a
        values[act] = val_a
        it += 1

    iterations[active] = it
    order = np.argsort(values, axis=1, kind="stable")
    values = np.take_along_axis(values, order, axis=1)
    simplex = np.take_along_axis(simplex, order[:, :, None], axis=1)
    return BatchMinimizeResult(
        x=simplex[:, 0, :].copy(),
        fun=values[:, 0].copy(),
        iterations=iterations,
        converged=converged,
    )


def minimize_with_restarts_batch(
    objective: BatchObjective,
    starts: np.ndarray,
    *,
    initial_step=1.0,
    xtol=1e-6,
    ftol=1e-9,
    max_iterations: int = 2000,
) -> BatchMinimizeResult:
    """Batched multi-start: ``starts`` is ``(B, S, n)``; keeps each problem's
    best run (earliest start wins ties, matching the scalar restart loop).

    Per-problem ``initial_step``/``xtol``/``ftol`` apply to every start of
    that problem.
    """
    starts = np.asarray(starts, dtype=float)
    if starts.ndim != 3 or starts.shape[1] == 0:
        raise ValueError(f"starts must be (B, S, n), got shape {starts.shape}")
    b, s, n = starts.shape

    def flat_objective(points: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return objective(points, idx // s)

    expand = lambda v: np.repeat(_as_per_problem(v, b), s)  # noqa: E731
    result = nelder_mead_batch(
        flat_objective,
        starts.reshape(b * s, n),
        initial_step=expand(initial_step),
        xtol=expand(xtol),
        ftol=expand(ftol),
        max_iterations=max_iterations,
    )
    funs = result.fun.reshape(b, s)
    best = np.argmin(funs, axis=1)
    rows = np.arange(b) * s + best
    return BatchMinimizeResult(
        x=result.x[rows],
        fun=result.fun[rows],
        iterations=result.iterations[rows],
        converged=result.converged[rows],
    )
