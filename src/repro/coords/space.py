"""Coordinate spaces and distance maps.

A :class:`CoordinateSpace` assigns each overlay node a point in a
k-dimensional geometric space; geometric distance approximates network
delay (Ng & Zhang's coordinates-based approach, paper Section 3.1). The
clustering, border-selection and routing layers all consume distances
through this object.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import EmbeddingError

NodeId = Hashable


class CoordinateSpace:
    """Immutable mapping of node ids to k-dimensional coordinates."""

    def __init__(self, coordinates: Dict[NodeId, Sequence[float]]) -> None:
        if not coordinates:
            raise EmbeddingError("coordinate space must contain at least one node")
        dims = {len(c) for c in coordinates.values()}
        if len(dims) != 1:
            raise EmbeddingError(f"inconsistent coordinate dimensions: {sorted(dims)}")
        self._dim = dims.pop()
        if self._dim == 0:
            raise EmbeddingError("coordinate dimension must be >= 1")
        self._coords: Dict[NodeId, Tuple[float, ...]] = {
            node: tuple(float(x) for x in coord) for node, coord in coordinates.items()
        }
        # Lazily built once (the space is immutable): all coordinates stacked
        # plus node -> row, so array() is a fancy index instead of a Python
        # tuple-conversion loop per call. The border-selection and clustering
        # kernels call array() with thousands of node lists.
        self._stacked: Optional[np.ndarray] = None
        self._row: Dict[NodeId, int] = {}

    @classmethod
    def from_stacked(
        cls, nodes: Sequence[NodeId], stacked: np.ndarray
    ) -> "CoordinateSpace":
        """Zero-copy construction over an existing ``(n, k)`` float array.

        *stacked* becomes the space's kernel-side storage directly — no
        per-node tuple conversion and no re-stacking on the first
        :meth:`array` call. This is how the columnar overlay state shares
        one coordinate array with every space view it hands out: kernels
        (``array``, ``distance_matrix``, ``closest_pair``) read views of
        the caller's array. Scalar accessors (:meth:`coordinate`,
        :meth:`distance`) go through a tuple table materialised once from
        the same floats, so values are bit-identical either way. The
        caller must not mutate *stacked* afterwards.
        """
        arr = np.asarray(stacked, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != len(nodes):
            raise EmbeddingError(
                f"stacked coordinates must be ({len(nodes)}, k), got {arr.shape}"
            )
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise EmbeddingError("coordinate space must contain at least one node")
        space = cls.__new__(cls)
        space._dim = int(arr.shape[1])
        space._coords = {
            node: tuple(row) for node, row in zip(nodes, arr.tolist())
        }
        if len(space._coords) != len(nodes):
            raise EmbeddingError("duplicate node ids in stacked coordinates")
        space._stacked = arr
        space._row = {node: i for i, node in enumerate(nodes)}
        return space

    @classmethod
    def from_trusted(
        cls, coordinates: Dict[NodeId, Tuple[float, ...]]
    ) -> "CoordinateSpace":
        """Construct from already-normalised coordinates without conversion.

        *coordinates* values MUST be equal-length tuples of floats — e.g.
        values previously returned by :meth:`coordinate`. The incremental
        membership layer materialises a space per churn event; skipping the
        per-node tuple-conversion loop keeps that O(changed), not O(n).
        """
        if not coordinates:
            raise EmbeddingError("coordinate space must contain at least one node")
        space = cls.__new__(cls)
        space._dim = len(next(iter(coordinates.values())))
        if space._dim == 0:
            raise EmbeddingError("coordinate dimension must be >= 1")
        space._coords = dict(coordinates)
        space._stacked = None
        space._row = {}
        return space

    @property
    def dimension(self) -> int:
        """Dimensionality k of the space."""
        return self._dim

    def __contains__(self, node: NodeId) -> bool:
        return node in self._coords

    def __len__(self) -> int:
        return len(self._coords)

    def nodes(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._coords)

    def coordinate(self, node: NodeId) -> Tuple[float, ...]:
        """The coordinates of *node*."""
        try:
            return self._coords[node]
        except KeyError:
            raise EmbeddingError(f"node {node!r} has no coordinates") from None

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between *u* and *v* in the space."""
        return math.dist(self.coordinate(u), self.coordinate(v))

    def array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Coordinates of *nodes* stacked into an ``(n, k)`` array."""
        if self._stacked is None:
            self._stacked = np.array(list(self._coords.values()), dtype=float)
            self._row = {node: i for i, node in enumerate(self._coords)}
        try:
            rows = [self._row[n] for n in nodes]
        except KeyError as exc:
            raise EmbeddingError(f"node {exc.args[0]!r} has no coordinates") from None
        if not rows:
            return np.empty((0, self._dim), dtype=float)
        return self._stacked[rows]

    def distance_matrix(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Pairwise Euclidean distance matrix among *nodes*."""
        pts = self.array(nodes)
        diff = pts[:, None, :] - pts[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def restrict(self, nodes: Iterable[NodeId]) -> "CoordinateSpace":
        """A new space containing only *nodes* (must all be present)."""
        return CoordinateSpace({n: self.coordinate(n) for n in nodes})

    def merged_with(self, other: Dict[NodeId, Sequence[float]]) -> "CoordinateSpace":
        """A new space with *other*'s nodes added (same dimension required)."""
        coords: Dict[NodeId, Sequence[float]] = dict(self._coords)
        coords.update(other)
        return CoordinateSpace(coords)

    def nearest(self, node: NodeId, candidates: Iterable[NodeId]) -> NodeId:
        """The candidate geometrically closest to *node* (excluding itself)."""
        best = None
        best_d = float("inf")
        for c in candidates:
            if c == node:
                continue
            d = self.distance(node, c)
            if d < best_d:
                best, best_d = c, d
        if best is None:
            raise EmbeddingError("no candidate other than the node itself")
        return best

    def closest_pair(
        self, group_a: Sequence[NodeId], group_b: Sequence[NodeId]
    ) -> Tuple[NodeId, NodeId, float]:
        """The closest pair ``(a, b, distance)`` with a in *group_a*, b in *group_b*.

        This is exactly the paper's border-proxy selection rule (Section 3.3).
        Vectorised; ties break toward the earliest indices, so the result is
        deterministic for deterministic inputs.
        """
        if not group_a or not group_b:
            raise EmbeddingError("closest_pair requires two non-empty groups")
        pts_a = self.array(group_a)
        pts_b = self.array(group_b)
        diff = pts_a[:, None, :] - pts_b[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        flat = int(np.argmin(dist))
        i, j = divmod(flat, dist.shape[1])
        return group_a[i], group_b[j], float(dist[i, j])
