"""Landmark-based network-coordinate embedding (GNP-style).

Implements the paper's distance-map construction (Section 3.1, after Ng &
Zhang [22]):

1. a small set of m landmark routers measure their pairwise delays (taking
   the minimum of several probes to filter noise);
2. the landmark delay matrix is mapped into a k-dimensional space with
   minimum error — we seed with classical MDS (Torgerson double-centering)
   and refine with from-scratch Nelder-Mead on the relative-error objective;
3. every overlay proxy measures its delay to the landmarks and solves a
   small k-variable minimization for its own coordinates.

Total cost is O(m^2 + n*m) measurements with O(k*n) state, versus O(n^2)
for a direct distance map — the paper's headline scalability argument for
the distance-obtainment step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coords.neldermead import (
    minimize_with_restarts,
    minimize_with_restarts_batch,
)
from repro.coords.space import CoordinateSpace
from repro.netsim.physical import PhysicalNetwork
from repro.util.errors import EmbeddingError
from repro.util.rng import RngLike, ensure_rng


def classical_mds(distances: np.ndarray, dim: int) -> np.ndarray:
    """Torgerson classical MDS: embed a distance matrix into ``dim`` dims.

    Used as the initial guess for the Nelder-Mead refinement. Negative
    eigenvalues (non-Euclidean measurement noise) are clamped to zero.
    """
    d = np.asarray(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise EmbeddingError(f"distance matrix must be square, got {d.shape}")
    n = d.shape[0]
    if dim < 1 or dim > n:
        raise EmbeddingError(f"dim must be in [1, {n}], got {dim}")
    j = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * j @ (d**2) @ j
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:dim]
    lams = np.clip(eigenvalues[order], 0.0, None)
    return eigenvectors[:, order] * np.sqrt(lams)


def _relative_error(estimated: np.ndarray, measured: np.ndarray) -> float:
    """Sum of squared relative errors over the upper triangle."""
    iu = np.triu_indices_from(measured, k=1)
    meas = measured[iu]
    est = estimated[iu]
    safe = np.where(meas > 0, meas, 1.0)
    return float(np.sum(((est - meas) / safe) ** 2))


def embed_landmarks(
    measured: np.ndarray,
    dim: int,
    *,
    max_iterations: int = 3000,
    seed: RngLike = None,
) -> np.ndarray:
    """Embed the landmark delay matrix into ``dim`` dimensions.

    Returns an ``(m, dim)`` coordinate array minimizing the sum of squared
    relative errors between geometric and measured distances.
    """
    measured = np.asarray(measured, dtype=float)
    m = measured.shape[0]
    if m < dim + 1:
        raise EmbeddingError(
            f"need at least dim+1={dim + 1} landmarks for a {dim}-D embedding, got {m}"
        )
    rng = ensure_rng(seed)
    initial = classical_mds(measured, dim)

    def objective(flat: np.ndarray) -> float:
        pts = flat.reshape(m, dim)
        diff = pts[:, None, :] - pts[None, :, :]
        est = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        return _relative_error(est, measured)

    scale = float(np.max(measured)) or 1.0
    jitter = initial + rng.gauss(0.0, 1.0) * 0.0  # deterministic base start
    starts = [initial.ravel(), (jitter + scale * 0.05 * _gauss_array(rng, (m, dim))).ravel()]
    result = minimize_with_restarts(
        objective,
        starts,
        initial_step=scale * 0.05,
        max_iterations=max_iterations,
        xtol=scale * 1e-6,
    )
    return result.x.reshape(m, dim)


def _gauss_array(rng, shape: Tuple[int, int]) -> np.ndarray:
    return np.array(
        [[rng.gauss(0.0, 1.0) for _ in range(shape[1])] for _ in range(shape[0])]
    )


def locate_host(
    landmark_coords: np.ndarray,
    measured_to_landmarks: Sequence[float],
    *,
    max_iterations: int = 800,
) -> np.ndarray:
    """Derive a host's coordinates from its measured landmark delays.

    Minimizes the sum of squared relative errors between the host-to-landmark
    geometric distances and the measured delays (the per-host step of GNP).
    """
    landmarks = np.asarray(landmark_coords, dtype=float)
    measured = np.asarray(measured_to_landmarks, dtype=float)
    if landmarks.shape[0] != measured.shape[0]:
        raise EmbeddingError(
            f"{landmarks.shape[0]} landmark coordinates but "
            f"{measured.shape[0]} measurements"
        )

    def objective(point: np.ndarray) -> float:
        est = np.sqrt(np.sum((landmarks - point) ** 2, axis=1))
        safe = np.where(measured > 0, measured, 1.0)
        return float(np.sum(((est - measured) / safe) ** 2))

    # Start from the measurement-weighted centroid: closer landmarks pull
    # harder. A second start at the nearest landmark guards against the
    # centroid landing in a bad basin.
    weights = 1.0 / np.maximum(measured, 1e-9)
    centroid = (landmarks * weights[:, None]).sum(axis=0) / weights.sum()
    nearest = landmarks[int(np.argmin(measured))]
    scale = float(np.max(measured)) or 1.0
    result = minimize_with_restarts(
        objective,
        [centroid, nearest],
        initial_step=scale * 0.1,
        max_iterations=max_iterations,
        xtol=scale * 1e-7,
    )
    return result.x


def locate_hosts(
    landmark_coords: np.ndarray,
    measured_matrix: np.ndarray,
    *,
    max_iterations: int = 800,
) -> np.ndarray:
    """Batched :func:`locate_host`: solve every host's coordinates at once.

    Args:
        landmark_coords: ``(m, k)`` embedded landmark positions.
        measured_matrix: ``(H, m)`` host-to-landmark delay measurements.

    Each host is an independent k-variable minimization; the batched
    Nelder-Mead runs all of them through one numpy-level simplex iteration
    per step instead of H Python-level loops. The starts, tolerances and
    descent decisions mirror :func:`locate_host` exactly, so the returned
    ``(H, k)`` coordinates are bit-identical to calling it per host (the
    equivalence suite asserts this).
    """
    landmarks = np.asarray(landmark_coords, dtype=float)
    measured = np.asarray(measured_matrix, dtype=float)
    if measured.ndim != 2 or landmarks.ndim != 2:
        raise EmbeddingError(
            f"expected (m, k) landmarks and (H, m) measurements, got "
            f"{landmarks.shape} and {measured.shape}"
        )
    if landmarks.shape[0] != measured.shape[1]:
        raise EmbeddingError(
            f"{landmarks.shape[0]} landmark coordinates but "
            f"{measured.shape[1]} measurements per host"
        )
    hosts = measured.shape[0]
    if hosts == 0:
        return np.zeros((0, landmarks.shape[1]), dtype=float)
    safe = np.where(measured > 0, measured, 1.0)

    def objective(points: np.ndarray, idx: np.ndarray) -> np.ndarray:
        diff = landmarks[None, :, :] - points[:, None, :]
        est = np.sqrt(np.sum(diff**2, axis=2))
        return np.sum(((est - measured[idx]) / safe[idx]) ** 2, axis=1)

    weights = 1.0 / np.maximum(measured, 1e-9)
    centroid = (landmarks[None, :, :] * weights[:, :, None]).sum(
        axis=1
    ) / weights.sum(axis=1)[:, None]
    nearest = landmarks[np.argmin(measured, axis=1)]
    scale = np.max(measured, axis=1)
    scale = np.where(scale == 0.0, 1.0, scale)
    starts = np.stack([centroid, nearest], axis=1)
    result = minimize_with_restarts_batch(
        objective,
        starts,
        initial_step=scale * 0.1,
        max_iterations=max_iterations,
        xtol=scale * 1e-7,
    )
    return result.x


def _locate_hosts_chunk(args) -> np.ndarray:
    """Process-pool entry point for :func:`locate_hosts` (must pickle)."""
    landmark_coords, measured_chunk, max_iterations = args
    return locate_hosts(
        landmark_coords, measured_chunk, max_iterations=max_iterations
    )


def locate_hosts_parallel(
    landmark_coords: np.ndarray,
    measured_matrix: np.ndarray,
    *,
    workers: int,
    max_iterations: int = 800,
) -> np.ndarray:
    """:func:`locate_hosts` fanned out over a process pool.

    Hosts embed independently given the landmarks, so the measurement matrix
    is split into ``workers`` contiguous chunks solved in parallel and
    re-concatenated in order — the result is identical to the single-process
    call. Falls back to in-process solving when the pool cannot be spawned
    (e.g. sandboxed interpreters) or when the batch is too small to amortize
    process start-up.
    """
    measured = np.asarray(measured_matrix, dtype=float)
    hosts = measured.shape[0]
    if workers < 1:
        raise EmbeddingError(f"workers must be >= 1, got {workers}")
    workers = min(workers, max(1, hosts // 64))
    if workers <= 1:
        return locate_hosts(
            landmark_coords, measured, max_iterations=max_iterations
        )
    chunks = np.array_split(np.arange(hosts), workers)
    jobs = [
        (np.asarray(landmark_coords, dtype=float), measured[c], max_iterations)
        for c in chunks
        if c.size
    ]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(jobs)) as pool:
            parts = list(pool.map(_locate_hosts_chunk, jobs))
    except (OSError, PermissionError, ImportError):
        return locate_hosts(
            landmark_coords, measured, max_iterations=max_iterations
        )
    return np.concatenate(parts, axis=0)


@dataclass
class EmbeddingReport:
    """Diagnostics of a completed embedding.

    Attributes:
        landmark_ids: physical router ids used as landmarks.
        landmark_coordinates: the embedded landmark positions, ``(m, k)`` —
            kept so late-joining proxies can derive their own coordinates.
        dimension: k of the coordinate space.
        measurement_count: probes issued (paper: O(m^2 + n*m)).
        landmark_fit_error: final relative-error objective on the landmarks.
    """

    landmark_ids: List[int]
    landmark_coordinates: np.ndarray
    dimension: int
    measurement_count: int
    landmark_fit_error: float


def choose_landmarks(
    physical: PhysicalNetwork, count: int, seed: RngLike = None
) -> List[int]:
    """Pick *count* well-separated landmark routers.

    Greedy k-center on true delays, seeded with a random router: landmarks
    spread across the network give better-conditioned embeddings than a
    random draw, and the paper leaves placement open ("set up a small group
    of m landmarks").
    """
    rng = ensure_rng(seed)
    nodes = physical.graph.nodes()
    if count > len(nodes):
        raise EmbeddingError(f"cannot pick {count} landmarks from {len(nodes)} routers")
    first = rng.choice(nodes)
    landmarks = [first]
    min_dist = dict(physical.delays_from(first))
    while len(landmarks) < count:
        nxt = max(nodes, key=lambda n: min_dist.get(n, 0.0))
        landmarks.append(nxt)
        for node, d in physical.delays_from(nxt).items():
            if d < min_dist.get(node, float("inf")):
                min_dist[node] = d
    return landmarks


def build_coordinate_space(
    physical: PhysicalNetwork,
    hosts: Sequence[int],
    *,
    landmarks: Optional[Sequence[int]] = None,
    landmark_count: int = 10,
    dimension: int = 2,
    probes: int = 3,
    seed: RngLike = None,
    vectorized: bool = True,
    workers: Optional[int] = None,
    telemetry=None,
) -> Tuple[CoordinateSpace, EmbeddingReport]:
    """End-to-end distance-map construction for *hosts* (paper Section 3.1).

    Args:
        physical: delay oracle (provides noisy measurements).
        hosts: overlay proxies to embed.
        landmarks: explicit landmark router ids; chosen automatically if None.
        landmark_count: number of landmarks when auto-choosing (paper uses 10).
        dimension: coordinate-space dimension k (paper uses 2).
        probes: measurements per pair; the minimum is kept.
        seed: RNG seed for landmark choice and refinement starts.
        vectorized: solve every ordinary host's coordinates with the batched
            Nelder-Mead over one measurement matrix (the fast default).
            ``False`` runs the original per-host loop — kept as the reference
            path for the equivalence suite. Both modes consume the RNG in
            the identical order; host-to-landmark *true* delays are computed
            from the landmark side in vectorized mode (m Dijkstra sweeps
            instead of n), which can shift measurements by float summation
            order (ulps) but yields the same clusters and borders.
        workers: optional process-pool fan-out for the per-host solves
            (hosts embed independently given the landmarks). ``None`` or 1
            solves in-process.
        telemetry: optional :class:`~repro.telemetry.Telemetry` scope for
            construction-phase spans; defaults to the process scope.

    Returns the coordinate space over *hosts* plus an :class:`EmbeddingReport`.
    """
    from repro.telemetry import get_telemetry

    telemetry = telemetry if telemetry is not None else get_telemetry()
    rng = ensure_rng(seed)
    if landmarks is None:
        landmarks = choose_landmarks(physical, landmark_count, rng)
    landmarks = list(landmarks)
    m = len(landmarks)
    measurement_count = 0

    with telemetry.tracer.span("construct.embedding.measure_landmarks", landmarks=m):
        measured = np.zeros((m, m), dtype=float)
        for i in range(m):
            for j in range(i + 1, m):
                value = physical.measure(landmarks[i], landmarks[j], probes=probes)
                measurement_count += probes
                measured[i, j] = measured[j, i] = value

    with telemetry.tracer.span("construct.embedding.landmarks", dimension=dimension):
        landmark_coords = embed_landmarks(measured, dimension, seed=rng)

    diff = landmark_coords[:, None, :] - landmark_coords[None, :, :]
    est = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    fit_error = _relative_error(est, measured)

    landmark_index = {router: i for i, router in enumerate(landmarks)}
    ordinary = [host for host in hosts if host not in landmark_index]

    located: Dict[int, np.ndarray] = {}
    if vectorized:
        with telemetry.tracer.span(
            "construct.embedding.measure_hosts", hosts=len(ordinary)
        ):
            to_landmarks = physical.measure_many(ordinary, landmarks, probes=probes)
            measurement_count += probes * m * len(ordinary)
        with telemetry.tracer.span(
            "construct.embedding.locate", hosts=len(ordinary), workers=workers or 1
        ):
            if workers is not None and workers > 1:
                host_coords = locate_hosts_parallel(
                    landmark_coords, to_landmarks, workers=workers
                )
            else:
                host_coords = locate_hosts(landmark_coords, to_landmarks)
        located = dict(zip(ordinary, host_coords))
    else:
        with telemetry.tracer.span(
            "construct.embedding.locate", hosts=len(ordinary), workers=0
        ):
            for host in ordinary:
                to_host = [
                    physical.measure(host, lm, probes=probes) for lm in landmarks
                ]
                measurement_count += probes * m
                located[host] = locate_host(landmark_coords, to_host)

    # Assemble in *hosts* order so the space's node order (and anything
    # iterating it) is independent of which hosts double as landmarks.
    coords: Dict[int, Sequence[float]] = {
        host: (
            landmark_coords[landmark_index[host]]
            if host in landmark_index
            else located[host]
        )
        for host in hosts
    }

    telemetry.registry.counter("construct.measurements").inc(measurement_count)
    report = EmbeddingReport(
        landmark_ids=landmarks,
        landmark_coordinates=landmark_coords,
        dimension=dimension,
        measurement_count=measurement_count,
        landmark_fit_error=fit_error,
    )
    return CoordinateSpace(coords), report


def embedding_accuracy(
    space: CoordinateSpace,
    physical: PhysicalNetwork,
    nodes: Sequence[int],
    *,
    sample_pairs: int = 500,
    seed: RngLike = None,
) -> Dict[str, float]:
    """Relative-error statistics of *space* against true delays.

    Samples up to *sample_pairs* node pairs and reports mean/median/p90 of
    ``|geometric - true| / true``. Used by the dimension ablation (A1).
    """
    rng = ensure_rng(seed)
    nodes = list(nodes)
    if len(nodes) < 2:
        raise EmbeddingError("need at least two nodes to assess accuracy")
    errors = []
    for _ in range(sample_pairs):
        u, v = rng.sample(nodes, 2)
        true = physical.delay(u, v)
        if true <= 0:
            continue
        est = space.distance(u, v)
        errors.append(abs(est - true) / true)
    if not errors:
        raise EmbeddingError("no valid pairs sampled")
    arr = np.array(errors)
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
        "pairs": float(arr.size),
    }
