"""Network coordinates: Nelder-Mead, landmark embedding, coordinate spaces."""

from repro.coords.embedding import (
    EmbeddingReport,
    build_coordinate_space,
    choose_landmarks,
    classical_mds,
    embed_landmarks,
    embedding_accuracy,
    locate_host,
    locate_hosts,
    locate_hosts_parallel,
)
from repro.coords.neldermead import (
    BatchMinimizeResult,
    MinimizeResult,
    minimize_with_restarts,
    minimize_with_restarts_batch,
    nelder_mead,
    nelder_mead_batch,
)
from repro.coords.space import CoordinateSpace

__all__ = [
    "BatchMinimizeResult",
    "CoordinateSpace",
    "EmbeddingReport",
    "MinimizeResult",
    "build_coordinate_space",
    "choose_landmarks",
    "classical_mds",
    "embed_landmarks",
    "embedding_accuracy",
    "locate_host",
    "locate_hosts",
    "locate_hosts_parallel",
    "minimize_with_restarts",
    "minimize_with_restarts_batch",
    "nelder_mead",
    "nelder_mead_batch",
]
