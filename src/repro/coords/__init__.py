"""Network coordinates: Nelder-Mead, landmark embedding, coordinate spaces."""

from repro.coords.embedding import (
    EmbeddingReport,
    build_coordinate_space,
    choose_landmarks,
    classical_mds,
    embed_landmarks,
    embedding_accuracy,
    locate_host,
)
from repro.coords.neldermead import MinimizeResult, minimize_with_restarts, nelder_mead
from repro.coords.space import CoordinateSpace

__all__ = [
    "CoordinateSpace",
    "EmbeddingReport",
    "MinimizeResult",
    "build_coordinate_space",
    "choose_landmarks",
    "classical_mds",
    "embed_landmarks",
    "embedding_accuracy",
    "locate_host",
    "minimize_with_restarts",
    "nelder_mead",
]
