"""Convergence auditing: did the system actually recover from the faults?

The :class:`ConvergenceAuditor` is the judgemental half of the fault
layer. Given a protocol run under a :class:`~repro.faults.injector.FaultInjector`,
it snapshots ground-truth capabilities, waits for the plan's last fault
window to close, and then asserts the paper's soft-state recovery story
as explicit, individually-reported invariants (:class:`AuditCheck`):

* ``reconverged`` — every live proxy's SCT_P and SCT_C match ground
  truth within K refresh periods of the last fault clearing;
* ``tables_match`` — the final tables equal ground truth exactly (the
  reconvergence check, re-asserted at the end of the settle window);
* ``delta_reanchor`` — the assemblers' gap counters stop growing once
  converged: streams re-anchored on a full snapshot instead of leaking
  permanent gaps (delta mode only);
* ``border_forward_repair`` — border proxies keep forwarding remote
  aggregates after the faults (the ``aggregate_forward`` flow resumes);
* ``router_fresh`` — a cached router bound to the protocol's capability
  feed serves the same answers as a fresh ground-truth router and is
  synced to the feed's current version: no CSP older than the feed
  survives recovery.

:func:`run_fault_scenario` is the one-call harness used by tests, the
resilience bench, and the CI fault matrix: build protocol + injector +
auditor, run, return a :class:`FaultScenarioResult` that can be dumped
as a JSONL audit trail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.overlay.network import ProxyId
from repro.state.protocol import StateDistributionProtocol
from repro.util.errors import FaultError
from repro.util.rng import RngLike


@dataclass(frozen=True)
class AuditCheck:
    """One named invariant the auditor asserted, with its outcome."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"check": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class FaultScenarioResult:
    """Everything a fault scenario produced, JSONL-able for audit trails."""

    plan: FaultPlan
    checks: Tuple[AuditCheck, ...]
    horizon: float
    deadline: float
    reconverged_at: Optional[float]
    counters: Dict[str, int] = field(default_factory=dict)
    trace: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def recovery_time(self) -> Optional[float]:
        """Simulated time from fault horizon to reconvergence."""
        if self.reconverged_at is None:
            return None
        return max(0.0, self.reconverged_at - self.horizon)

    def failures(self) -> List[AuditCheck]:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        when = (
            f"reconverged_at={self.reconverged_at:.0f}"
            if self.reconverged_at is not None
            else "never reconverged"
        )
        return (
            f"[{verdict}] seed={self.plan.seed} {when} "
            f"(deadline={self.deadline:.0f}) "
            f"checks={sum(c.passed for c in self.checks)}/{len(self.checks)}"
        )

    def dump_jsonl(self, path: str) -> int:
        """Write the fault trace followed by the audit verdicts as JSONL."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.trace:
                fh.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")
            for check in self.checks:
                fh.write(json.dumps(check.to_dict(), sort_keys=True) + "\n")
        return len(self.trace) + len(self.checks)


class ConvergenceAuditor:
    """Drives a faulted protocol run and asserts post-fault recovery.

    ``k_periods`` is the reconvergence budget in protocol refresh periods
    (the K of the acceptance criterion): the system must be back at
    ground truth by ``plan.last_fault_end + k_periods * refresh_period``.
    """

    def __init__(
        self,
        protocol: StateDistributionProtocol,
        injector: FaultInjector,
        *,
        k_periods: int = 3,
    ) -> None:
        if injector.sim is not protocol.sim:
            raise FaultError("injector is not installed on the protocol's simulator")
        if k_periods < 1:
            raise FaultError(f"k_periods must be >= 1, got {k_periods}")
        self.protocol = protocol
        self.injector = injector
        self.plan = injector.plan
        self.k_periods = k_periods

    # -- geometry -----------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """When the last fault stops acting."""
        return self.plan.last_fault_end

    @property
    def deadline(self) -> float:
        """Latest acceptable reconvergence instant."""
        return self.horizon + self.k_periods * self.protocol.refresh_period

    # -- convergence over live proxies ---------------------------------------------

    def _skip(self) -> FrozenSet[ProxyId]:
        """Proxies exempt from table checks: down forever, never recovering."""
        return self.plan.permanently_down(self.protocol.sim.now)

    def converged_live(self) -> bool:
        """Like protocol.converged(), ignoring permanently-down proxies."""
        protocol = self.protocol
        skip = self._skip()
        truth_c = protocol.ground_truth_sct_c()
        for proxy, state in protocol.states.items():
            if proxy in skip:
                continue
            if state.sct_p.as_dict() != protocol.ground_truth_sct_p(proxy):
                return False
            if state.sct_c.as_dict() != truth_c:
                return False
        return True

    def await_reconvergence(self, *, check_interval: float = 250.0) -> Optional[float]:
        """Run the simulation until live convergence or the deadline.

        Returns the (interval-granular) reconvergence instant, or None if
        the deadline passed without the tables matching ground truth.
        """
        sim = self.protocol.sim
        sim.run_until(self.horizon)
        while True:
            if self.converged_live():
                return sim.now
            if sim.now >= self.deadline:
                return None
            sim.run_until(min(sim.now + check_interval, self.deadline))

    # -- the audit ------------------------------------------------------------------

    def audit(
        self,
        framework: Any = None,
        *,
        probes: int = 6,
        probe_seed: Optional[int] = None,
        check_interval: float = 250.0,
    ) -> FaultScenarioResult:
        """Run to the deadline and assert every recovery invariant.

        Pass the owning :class:`~repro.core.framework.HFCFramework` to
        enable the ``router_fresh`` check (it needs request generation);
        without it that check is reported as skipped-but-passed.
        """
        protocol = self.protocol
        sim = protocol.sim
        checks: List[AuditCheck] = []

        reconverged_at = self.await_reconvergence(check_interval=check_interval)
        checks.append(
            AuditCheck(
                "reconverged",
                reconverged_at is not None,
                f"at t={reconverged_at:.0f} (deadline {self.deadline:.0f})"
                if reconverged_at is not None
                else f"still diverged at deadline t={self.deadline:.0f}",
            )
        )

        # one refresh period of grace: streams whose tail deltas were lost
        # keep gap-rejecting until their next full snapshot re-anchors them,
        # which by construction takes at most one refresh period. After the
        # grace window the gap counters must be flat (no permanent gaps)
        # and borders must still be forwarding remote aggregates.
        sim.run_until(sim.now + protocol.refresh_period)
        gaps_before = protocol.delta_stats()["gaps"]
        forwards_before = sim.telemetry.registry.values_by_label(
            "sim.messages.delivered", "kind"
        ).get("aggregate_forward", 0)
        sim.run_until(sim.now + protocol.refresh_period)
        gaps_after = protocol.delta_stats()["gaps"]
        forwards_after = sim.telemetry.registry.values_by_label(
            "sim.messages.delivered", "kind"
        ).get("aggregate_forward", 0)

        if protocol.mode == "delta":
            checks.append(
                AuditCheck(
                    "delta_reanchor",
                    gaps_after == gaps_before,
                    f"gaps {gaps_before} -> {gaps_after} over one settle period",
                )
            )
        else:
            checks.append(
                AuditCheck("delta_reanchor", True, "full mode: no delta streams")
            )

        if protocol.hfc.cluster_count > 1:
            checks.append(
                AuditCheck(
                    "border_forward_repair",
                    forwards_after > forwards_before,
                    f"aggregate_forward {forwards_before} -> {forwards_after}",
                )
            )
        else:
            checks.append(
                AuditCheck(
                    "border_forward_repair", True, "single cluster: no borders"
                )
            )

        checks.append(
            AuditCheck(
                "tables_match",
                self.converged_live(),
                "live SCT_P/SCT_C equal ground truth after settling"
                if self.converged_live()
                else "tables diverged from ground truth after settling",
            )
        )

        checks.append(self._router_fresh(framework, probes, probe_seed))

        counters: Dict[str, int] = {}
        registry = sim.telemetry.registry
        for name in ("faults.dropped", "faults.delayed"):
            for cause, value in registry.values_by_label(name, "cause").items():
                counters[f"{name}.{cause}"] = value
        counters["faults.duplicated"] = registry.total("faults.duplicated")
        counters["faults.restarts"] = registry.total("faults.restarts")
        counters["protocol.restarts"] = registry.total("protocol.restarts")
        counters["protocol.restarts.warm"] = registry.total("protocol.restarts.warm")
        counters.update(
            {f"delta.{k}": v for k, v in protocol.delta_stats().items()}
        )

        return FaultScenarioResult(
            plan=self.plan,
            checks=tuple(checks),
            horizon=self.horizon,
            deadline=self.deadline,
            reconverged_at=reconverged_at,
            counters=counters,
            trace=list(self.injector.trace),
        )

    def _router_fresh(
        self, framework: Any, probes: int, probe_seed: Optional[int]
    ) -> AuditCheck:
        """The cached router never serves a CSP older than the feed version."""
        if framework is None:
            return AuditCheck("router_fresh", True, "skipped: no framework given")
        if not self.converged_live():
            return AuditCheck(
                "router_fresh", False, "cannot probe: tables never reconverged"
            )
        feed = self.protocol.capability_feed()
        cached = framework.cached_hierarchical_router(capability_feed=feed)
        fresh = framework.hierarchical_router()
        base = probe_seed if probe_seed is not None else self.plan.seed * 10007
        for i in range(probes):
            request = framework.random_request(seed=base + i)
            got = cached.route(request).proxies()
            want = fresh.route(request).proxies()
            if got != want:
                return AuditCheck(
                    "router_fresh",
                    False,
                    f"probe {i}: cached router path {got} != ground truth {want}",
                )
            if cached._feed_version != feed.version:
                return AuditCheck(
                    "router_fresh",
                    False,
                    f"probe {i}: router synced to feed version "
                    f"{cached._feed_version!r}, feed is at {feed.version!r}",
                )
        return AuditCheck(
            "router_fresh", True, f"{probes} probes match ground-truth routing"
        )


def run_fault_scenario(
    framework: Any,
    plan: FaultPlan,
    *,
    k_periods: int = 3,
    mode: str = "delta",
    refresh_every: int = 4,
    aggregate_period: float = 1000.0,
    protocol_seed: RngLike = None,
    probes: int = 6,
    check_interval: float = 250.0,
    sim: Any = None,
) -> FaultScenarioResult:
    """Build protocol + injector + auditor for *plan* and run the audit.

    The injector's restart hook is wired to
    :meth:`~repro.state.protocol.StateDistributionProtocol.wipe_state`, so
    a :class:`~repro.faults.plan.CrashRestart` with ``wipe_state=True``
    reboots the proxy with empty soft state (and, if ``services_after`` is
    set, a changed service placement) — the scenario that flushes out
    stale-stream bugs. Specs with ``warm_restart=True`` instead get their
    state plane captured at the crash instant (the crash hook) and
    restored on restart via
    :meth:`~repro.state.protocol.StateDistributionProtocol.restore_state`
    — the snapshot-backed recovery path, where learned tables survive and
    only the emitter incarnation advances.
    """
    protocol = StateDistributionProtocol(
        framework.hfc,
        seed=protocol_seed if protocol_seed is not None else plan.seed,
        mode=mode,
        refresh_every=refresh_every,
        aggregate_period=aggregate_period,
        sim=sim,
    )

    snapshots: Dict[Any, Dict[str, Any]] = {}

    def on_crash(spec: Any) -> None:
        if getattr(spec, "warm_restart", False):
            snapshots[spec.proxy] = protocol.snapshot_proxy(spec.proxy)

    def on_restart(spec: Any) -> None:
        if getattr(spec, "warm_restart", False) and spec.proxy in snapshots:
            protocol.restore_state(
                spec.proxy, snapshots.pop(spec.proxy), services=spec.services_after
            )
        elif spec.wipe_state:
            protocol.wipe_state(spec.proxy, services=spec.services_after)
        elif spec.services_after is not None:
            protocol.update_local_services(spec.proxy, spec.services_after)

    injector = FaultInjector(plan).install(
        protocol.sim, on_restart=on_restart, on_crash=on_crash
    )
    auditor = ConvergenceAuditor(protocol, injector, k_periods=k_periods)
    return auditor.audit(
        framework, probes=probes, check_interval=check_interval
    )
