"""Fault injection on the simulator's delivery path.

A :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a :class:`~repro.netsim.eventsim.Simulator` by installing itself
as the simulator's delivery interceptor. Every message the simulation
sends passes through :meth:`FaultInjector.intercept`, which applies, in a
fixed order: sender-crash drops, partition drops, link-loss drops, delay
jitter, reordering hold-back, duplication, and recipient-crash drops (a
message already in flight toward a proxy that will be down at its arrival
time dies with it).

Determinism: all probabilistic decisions draw from one RNG seeded with
``plan.seed``, consumed in event order. Because the event engine itself
is deterministic, the same plan over the same simulation yields a
bit-identical :attr:`FaultInjector.trace` — the property the convergence
auditor's reproducibility check asserts.

Crash/restart schedules are installed as simulator events; on a restart
the injector fires the ``on_restart`` callback (the scenario harness
wires it to the protocol's state wipe) and records the lifecycle in the
trace. Every decision also bumps a ``faults.*`` telemetry counter.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.faults.plan import (
    CrashRestart,
    DelayJitter,
    Duplicate,
    FaultPlan,
    LinkLoss,
    Partition,
    Reorder,
)
from repro.netsim.eventsim import Message, Simulator
from repro.overlay.network import ProxyId
from repro.util.errors import FaultError
from repro.util.rng import ensure_rng

#: callback fired when a crashed proxy restarts; receives the spec
RestartHook = Callable[[CrashRestart], None]

#: callback fired at the instant a proxy crashes; receives the spec. The
#: scenario harness uses it to capture a warm-restart snapshot — the last
#: state the proxy persisted before going down
CrashHook = Callable[[CrashRestart], None]

#: maps a simulator address to the proxy a fault spec would name (identity
#: by default); lets auxiliary processes colocated with a proxy — e.g. the
#: traffic engine's ``("traffic", proxy)`` relays — share the proxy's fate
AddressResolver = Callable[[Any], Any]


class FaultInjector:
    """Executes a fault plan by intercepting simulator deliveries."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = ensure_rng(plan.seed)
        self.sim: Optional[Simulator] = None
        #: chronological record of every fault decision (JSONL-able)
        self.trace: List[Dict[str, Any]] = []
        self._losses = [s for s in plan.specs if isinstance(s, LinkLoss)]
        self._partitions = [s for s in plan.specs if isinstance(s, Partition)]
        self._crashes = [s for s in plan.specs if isinstance(s, CrashRestart)]
        self._jitters = [s for s in plan.specs if isinstance(s, DelayJitter)]
        self._duplicates = [s for s in plan.specs if isinstance(s, Duplicate)]
        self._reorders = [s for s in plan.specs if isinstance(s, Reorder)]
        self._on_restart: Optional[RestartHook] = None
        self._on_crash: Optional[CrashHook] = None
        self._resolve: Optional[AddressResolver] = None

    # -- lifecycle ---------------------------------------------------------------

    def install(
        self,
        sim: Simulator,
        *,
        on_restart: Optional[RestartHook] = None,
        on_crash: Optional[CrashHook] = None,
        resolve: Optional[AddressResolver] = None,
    ) -> "FaultInjector":
        """Hook this injector into *sim* and schedule crash/restart events.

        *on_crash* fires at each crash instant (before any post-crash
        message is intercepted) — the warm-restart path captures the
        proxy's state plane there. *resolve* maps message addresses to the
        proxy ids fault specs name (default: identity). Layers that
        register auxiliary processes under namespaced addresses (the
        traffic engine's per-proxy relays) pass their resolver so
        crash/partition/loss matching sees the proxy.
        """
        if self.sim is not None:
            raise FaultError("injector is already installed")
        if sim.interceptor is not None:
            raise FaultError("simulator already has a delivery interceptor")
        self.sim = sim
        self._on_restart = on_restart
        self._on_crash = on_crash
        self._resolve = resolve
        sim.interceptor = self.intercept
        registry = sim.telemetry.registry
        self._drop_counters = {
            cause: registry.counter("faults.dropped", cause=cause)
            for cause in ("loss", "partition", "crash_sender", "crash_recipient")
        }
        self._delay_counters = {
            cause: registry.counter("faults.delayed", cause=cause)
            for cause in ("jitter", "reorder")
        }
        self._duplicated = registry.counter("faults.duplicated")
        self._restarts = registry.counter("faults.restarts")
        for spec in self._crashes:
            sim.schedule(spec.crash_at - sim.now, lambda s=spec: self._crash(s))
            if spec.restart_at is not None:
                sim.schedule(
                    spec.restart_at - sim.now, lambda s=spec: self._restart(s)
                )
        return self

    def _crash(self, spec: CrashRestart) -> None:
        assert self.sim is not None
        self._trace("crash", proxy=spec.proxy)
        self.sim.telemetry.events.record("faults.crash", proxy=spec.proxy)
        if self._on_crash is not None:
            self._on_crash(spec)
        if spec.restart_at is None and self.sim.is_registered(spec.proxy):
            # A crash with no restart is a permanent departure: free the
            # address so the registry stops growing and in-flight traffic
            # becomes counted drops rather than zombie deliveries.
            self.sim.deregister(spec.proxy)

    def _restart(self, spec: CrashRestart) -> None:
        assert self.sim is not None
        self._restarts.inc()
        self._trace("restart", proxy=spec.proxy, wiped=spec.wipe_state)
        self.sim.telemetry.events.record(
            "faults.restart", proxy=spec.proxy, wiped=spec.wipe_state
        )
        if self._on_restart is not None:
            self._on_restart(spec)

    # -- queries -----------------------------------------------------------------

    def down(self, proxy: ProxyId, t: float) -> bool:
        """Whether *proxy* is crashed (and not yet restarted) at time *t*."""
        return any(s.proxy == proxy and s.down_at(t) for s in self._crashes)

    # -- the delivery hook --------------------------------------------------------

    def intercept(self, message: Message, delay: float) -> Optional[List[float]]:
        """Decide the fate of one delivery; see the module docstring.

        Returns None to deliver normally, else the list of delays at which
        copies are delivered (empty = dropped).
        """
        sim = self.sim
        assert sim is not None
        now = sim.now
        sender, recipient = message.sender, message.recipient
        if self._resolve is not None:
            sender = self._resolve(sender)
            recipient = self._resolve(recipient)

        if self.down(sender, now):
            return self._drop("crash_sender", message, now)
        for partition in self._partitions:
            if partition.start <= now < partition.end and partition.severs(
                sender, recipient
            ):
                return self._drop("partition", message, now)
        for loss in self._losses:
            if (
                loss.start <= now < loss.end
                and loss.matches(sender, recipient)
                and self._rng.random() < loss.loss_rate
            ):
                return self._drop("loss", message, now)

        touched = False
        for jitter in self._jitters:
            if jitter.start <= now < jitter.end and (
                jitter.probability >= 1.0 or self._rng.random() < jitter.probability
            ):
                extra = self._rng.uniform(0.0, jitter.jitter)
                delay += extra
                touched = True
                self._delay_counters["jitter"].inc()
                self._trace("jitter", message=message, t=now, extra=extra)
        for reorder in self._reorders:
            if reorder.start <= now < reorder.end and self._rng.random() < reorder.probability:
                extra = self._rng.uniform(0.0, reorder.max_extra_delay)
                delay += extra
                touched = True
                self._delay_counters["reorder"].inc()
                self._trace("reorder", message=message, t=now, extra=extra)

        delays = [delay]
        for duplicate in self._duplicates:
            if duplicate.start <= now < duplicate.end and self._rng.random() < duplicate.probability:
                offset = (
                    self._rng.uniform(0.0, duplicate.max_offset)
                    if duplicate.max_offset > 0
                    else 0.0
                )
                delays.append(delay + offset)
                touched = True
                self._duplicated.inc()
                self._trace("duplicate", message=message, t=now, offset=offset)

        surviving = []
        for d in delays:
            if self.down(recipient, now + d):
                self._drop("crash_recipient", message, now)
            else:
                surviving.append(d)
        if len(surviving) < len(delays):
            return surviving
        return delays if touched else None

    # -- bookkeeping -------------------------------------------------------------

    def _drop(self, cause: str, message: Message, now: float) -> List[float]:
        self._drop_counters[cause].inc()
        self._trace("drop", message=message, t=now, cause=cause)
        return []

    def _trace(
        self,
        fault: str,
        *,
        message: Optional[Message] = None,
        t: Optional[float] = None,
        **fields: Any,
    ) -> None:
        entry: Dict[str, Any] = {
            "t": self.sim.now if t is None else t,  # type: ignore[union-attr]
            "fault": fault,
        }
        if message is not None:
            entry["kind"] = message.kind
            entry["sender"] = message.sender
            entry["recipient"] = message.recipient
        entry.update(fields)
        self.trace.append(entry)

    def dump_trace(self, path: str) -> int:
        """Write the fault trace as JSON lines; returns the entry count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.trace:
                fh.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")
        return len(self.trace)
