"""Fault plans: pure data describing what goes wrong, and when.

A :class:`FaultPlan` is the declarative half of the fault-injection layer:
an immutable, seed-carrying schedule of fault specs. It contains no
behaviour — the :class:`~repro.faults.injector.FaultInjector` executes it
against a simulator — so the same plan object can drive a unit test, the
resilience bench, and the CI fault matrix, and two runs of the same plan
produce bit-identical fault traces.

All times are absolute simulated time; windows are half-open
``[start, end)``. Probabilistic specs (loss rates, duplication and
reordering probabilities) draw from a single RNG seeded with
``plan.seed``, consumed in event order, which is what makes the whole
trace reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from repro.overlay.network import ProxyId
from repro.services.catalog import ServiceName
from repro.util.errors import FaultError


def _check_window(spec: str, start: float, end: float) -> None:
    if not (0.0 <= start < end):
        raise FaultError(f"{spec}: window [{start}, {end}) is not a valid interval")


def _check_probability(spec: str, name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{spec}: {name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkLoss:
    """Bernoulli loss on matching links during ``[start, end)``.

    ``sender``/``recipient`` of ``None`` act as wildcards, so one spec can
    express anything from "this one directed link is lossy" to "the whole
    overlay loses 30% of messages for four seconds" (a loss burst).
    """

    start: float
    end: float
    loss_rate: float
    sender: Optional[ProxyId] = None
    recipient: Optional[ProxyId] = None

    def __post_init__(self) -> None:
        _check_window("LinkLoss", self.start, self.end)
        _check_probability("LinkLoss", "loss_rate", self.loss_rate)

    def matches(self, sender: ProxyId, recipient: ProxyId) -> bool:
        return (self.sender is None or self.sender == sender) and (
            self.recipient is None or self.recipient == recipient
        )


@dataclass(frozen=True)
class Partition:
    """A network partition during ``[start, end)``.

    ``groups`` are disjoint proxy sets; every message between two
    *different* groups is dropped while the window is open. Proxies not in
    any group are unaffected (they can reach everyone). The window closing
    is the "heal".
    """

    start: float
    end: float
    groups: Tuple[FrozenSet[ProxyId], ...]

    def __post_init__(self) -> None:
        _check_window("Partition", self.start, self.end)
        if len(self.groups) < 2:
            raise FaultError("Partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise FaultError("Partition groups must be disjoint")
            seen |= group

    def severs(self, sender: ProxyId, recipient: ProxyId) -> bool:
        side_s = side_r = None
        for i, group in enumerate(self.groups):
            if sender in group:
                side_s = i
            if recipient in group:
                side_r = i
        return side_s is not None and side_r is not None and side_s != side_r


@dataclass(frozen=True)
class CrashRestart:
    """A proxy crashes at ``crash_at`` and (optionally) restarts later.

    While crashed the proxy neither sends nor receives — messages in
    either direction die silently, including ones already in flight toward
    it. On restart with ``wipe_state=True`` (the default) its soft state
    is reinitialised via the restart hook (for the state protocol:
    :meth:`~repro.state.protocol.StateDistributionProtocol.wipe_state`),
    and ``services_after`` optionally changes the service set it comes
    back with — the case that historically exposed permanently-stale
    receivers.

    ``warm_restart=True`` models a node with stable storage: the crash
    hook captures the proxy's state plane (its SCT tables and delta
    streams) and the restart hook restores it via
    :meth:`~repro.state.protocol.StateDistributionProtocol.restore_state`
    instead of wiping — learned knowledge survives, only the emitter's
    incarnation advances. Takes precedence over ``wipe_state``.
    """

    proxy: ProxyId
    crash_at: float
    restart_at: Optional[float] = None
    wipe_state: bool = True
    services_after: Optional[FrozenSet[ServiceName]] = None
    warm_restart: bool = False

    def __post_init__(self) -> None:
        if self.crash_at < 0:
            raise FaultError(f"CrashRestart: crash_at must be >= 0, got {self.crash_at}")
        if self.restart_at is not None and self.restart_at <= self.crash_at:
            raise FaultError("CrashRestart: restart_at must be after crash_at")
        if self.warm_restart and self.restart_at is None:
            raise FaultError("CrashRestart: warm_restart requires a restart_at")

    def down_at(self, t: float) -> bool:
        """Whether the proxy is down at time *t*."""
        if t < self.crash_at:
            return False
        return self.restart_at is None or t < self.restart_at


@dataclass(frozen=True)
class DelayJitter:
    """Extra uniform(0, ``jitter``) delivery delay during ``[start, end)``."""

    start: float
    end: float
    jitter: float
    probability: float = 1.0

    def __post_init__(self) -> None:
        _check_window("DelayJitter", self.start, self.end)
        _check_probability("DelayJitter", "probability", self.probability)
        if self.jitter <= 0:
            raise FaultError(f"DelayJitter: jitter must be positive, got {self.jitter}")


@dataclass(frozen=True)
class Duplicate:
    """Messages are duplicated with ``probability`` during ``[start, end)``.

    The copy is delivered after an extra uniform(0, ``max_offset``) delay
    (0 delivers both copies simultaneously).
    """

    start: float
    end: float
    probability: float
    max_offset: float = 0.0

    def __post_init__(self) -> None:
        _check_window("Duplicate", self.start, self.end)
        _check_probability("Duplicate", "probability", self.probability)
        if self.max_offset < 0:
            raise FaultError("Duplicate: max_offset must be >= 0")


@dataclass(frozen=True)
class Reorder:
    """Messages are held back with ``probability`` during ``[start, end)``.

    A held message gets an extra uniform(0, ``max_extra_delay``) delay, so
    later messages on the same stream can overtake it — the reordering the
    delta assembler's stale/gap logic must absorb.
    """

    start: float
    end: float
    probability: float
    max_extra_delay: float

    def __post_init__(self) -> None:
        _check_window("Reorder", self.start, self.end)
        _check_probability("Reorder", "probability", self.probability)
        if self.max_extra_delay <= 0:
            raise FaultError("Reorder: max_extra_delay must be positive")


FaultSpec = Union[LinkLoss, Partition, CrashRestart, DelayJitter, Duplicate, Reorder]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of fault specs.

    ``seed`` drives every probabilistic decision the injector makes for
    this plan; two runs of the same plan against the same deterministic
    simulation produce bit-identical fault traces.
    """

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # normalise any iterable of specs into the canonical tuple form
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def last_fault_end(self) -> float:
        """When the last scheduled fault stops acting (0.0 for an empty plan).

        A crash that never restarts contributes its crash time: from then
        on the proxy is simply gone, which is steady state, not an open
        fault window.
        """
        end = 0.0
        for spec in self.specs:
            if isinstance(spec, CrashRestart):
                end = max(end, spec.restart_at if spec.restart_at is not None else spec.crash_at)
            else:
                end = max(end, spec.end)
        return end

    @property
    def first_fault_start(self) -> float:
        """When the earliest scheduled fault starts acting (0.0 when empty).

        The dual of :attr:`last_fault_end`; together they bound the fault
        window, e.g. for the traffic layer's delivery-continuity measure.
        """
        starts = [
            spec.crash_at if isinstance(spec, CrashRestart) else spec.start
            for spec in self.specs
        ]
        return min(starts) if starts else 0.0

    def crash_specs(self) -> Tuple[CrashRestart, ...]:
        """All crash/restart specs, in schedule order."""
        return tuple(s for s in self.specs if isinstance(s, CrashRestart))

    def permanently_down(self, t: float):
        """Proxies crashed at *t* with no restart scheduled, ever."""
        return frozenset(
            s.proxy
            for s in self.crash_specs()
            if s.restart_at is None and s.crash_at <= t
        )

    def describe(self) -> str:
        """One line per spec, for logs and bench output."""
        lines = [f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"]
        for spec in self.specs:
            lines.append(f"  {spec}")
        return "\n".join(lines)
