"""Canonical seeded fault plans: the CI fault matrix.

Each factory returns a :class:`~repro.faults.plan.FaultPlan` whose
geometry is derived deterministically from the given HFC (so the same
seed over the same build is the same plan, bit for bit). They are the
plans the test suite, the resilience bench (``bench_resilience.py``),
and the CI fault-matrix smoke job all share:

* :func:`loss_burst_plan` — overlay-wide 30% loss burst;
* :func:`partition_heal_plan` — split the clusters in two halves, heal;
* :func:`crash_restart_plan` — crash a border proxy, wipe its state, and
  restart it with a *changed* service set (the stale-stream flusher);
* :func:`reorder_duplicate_plan` — reordering plus duplication, which the
  delta assembler's stale/gap logic must absorb without corruption.

:func:`standard_fault_matrix` bundles them, named, for matrix-style runs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.faults.plan import (
    CrashRestart,
    Duplicate,
    FaultPlan,
    LinkLoss,
    Partition,
    Reorder,
)
from repro.overlay.network import ProxyId
from repro.util.errors import FaultError
from repro.util.rng import ensure_rng


def loss_burst_plan(
    hfc: object,
    *,
    seed: int = 17,
    start: float = 1500.0,
    duration: float = 4000.0,
    loss_rate: float = 0.30,
) -> FaultPlan:
    """An overlay-wide Bernoulli loss burst (default 30% for 4 periods)."""
    return FaultPlan(
        seed=seed,
        specs=(LinkLoss(start=start, end=start + duration, loss_rate=loss_rate),),
    )


def partition_heal_plan(
    hfc,
    *,
    seed: int = 23,
    start: float = 1500.0,
    duration: float = 4000.0,
) -> FaultPlan:
    """Split the overlay's clusters into two halves, then heal.

    The cut follows cluster boundaries (lower-id clusters vs the rest),
    which severs exactly the border-to-border aggregate-forward traffic —
    the flow whose repair the auditor checks.
    """
    if hfc.cluster_count < 2:
        raise FaultError("partition_heal_plan needs at least two clusters")
    half = hfc.cluster_count // 2
    low: List[ProxyId] = []
    high: List[ProxyId] = []
    for cid in range(hfc.cluster_count):
        (low if cid < half else high).extend(hfc.members(cid))
    partition = Partition(
        start=start,
        end=start + duration,
        groups=(frozenset(low), frozenset(high)),
    )
    return FaultPlan(seed=seed, specs=(partition,))


def crash_restart_plan(
    hfc,
    *,
    seed: int = 31,
    crash_at: float = 1500.0,
    downtime: float = 2500.0,
) -> FaultPlan:
    """Crash a border proxy, wipe its state, restart with changed services.

    The victim is the first border proxy of cluster 0 (deterministic for
    a given build). It comes back with a rotated service set — one service
    dropped, so ground truth itself moves — which makes any receiver that
    is still frozen on the victim's pre-crash stream *observably* stale:
    exactly the scenario that exposed the emitter-restart sequence bug.
    """
    victim = _border_victim(hfc)
    services = sorted(hfc.overlay.placement[victim])
    rng = ensure_rng(seed)
    after: FrozenSet[str] = (
        frozenset(services[:-1]) if len(services) > 1
        else frozenset(rng.sample(sorted(_all_services(hfc) - set(services)), 1))
    )
    spec = CrashRestart(
        proxy=victim,
        crash_at=crash_at,
        restart_at=crash_at + downtime,
        wipe_state=True,
        services_after=after,
    )
    return FaultPlan(seed=seed, specs=(spec,))


def reorder_duplicate_plan(
    hfc: object,
    *,
    seed: int = 41,
    start: float = 1500.0,
    duration: float = 4000.0,
    reorder_probability: float = 0.35,
    duplicate_probability: float = 0.25,
) -> FaultPlan:
    """Heavy reordering plus duplication across the whole overlay."""
    end = start + duration
    return FaultPlan(
        seed=seed,
        specs=(
            Reorder(
                start=start,
                end=end,
                probability=reorder_probability,
                max_extra_delay=900.0,
            ),
            Duplicate(
                start=start,
                end=end,
                probability=duplicate_probability,
                max_offset=300.0,
            ),
        ),
    )


def super_border_crash_plan(
    hfc,
    *,
    seed: int = 43,
    crash_at: float = 1500.0,
    downtime: float = 2500.0,
    depth: int = 3,
) -> FaultPlan:
    """Crash a *super-border* proxy of a depth-``depth`` hierarchy.

    The victim is the first top-level border proxy of a recursive
    hierarchy built over *hfc* (deterministic for a given build) — the
    proxy whose state matters at every level: it serves its cluster, its
    cluster's borders, and the top-level crossing. Like
    :func:`crash_restart_plan` it restarts with a rotated service set, so
    per-level aggregate reconvergence is observable, not vacuous.

    Deliberately *not* part of :func:`standard_fault_matrix`: the
    resilience bench iterates that matrix, and its gated baselines predate
    this plan. The fault-matrix script wires it in explicitly.
    """
    from repro.hierarchy.levels import build_levels

    hierarchy = build_levels(hfc, depth)
    top_borders = hierarchy.all_top_borders()
    victim = top_borders[0] if top_borders else _border_victim(hfc)
    services = sorted(hfc.overlay.placement[victim])
    rng = ensure_rng(seed)
    after: FrozenSet[str] = (
        frozenset(services[:-1]) if len(services) > 1
        else frozenset(rng.sample(sorted(_all_services(hfc) - set(services)), 1))
    )
    spec = CrashRestart(
        proxy=victim,
        crash_at=crash_at,
        restart_at=crash_at + downtime,
        wipe_state=True,
        services_after=after,
    )
    return FaultPlan(seed=seed, specs=(spec,))


def standard_fault_matrix(hfc, *, seed: int = 7) -> Dict[str, FaultPlan]:
    """The named seeded plans every resilience run exercises."""
    return {
        "loss_burst": loss_burst_plan(hfc, seed=seed + 10),
        "partition_heal": partition_heal_plan(hfc, seed=seed + 20),
        "crash_restart": crash_restart_plan(hfc, seed=seed + 30),
        "reorder_duplicate": reorder_duplicate_plan(hfc, seed=seed + 40),
    }


# -- helpers -----------------------------------------------------------------------


def _border_victim(hfc) -> ProxyId:
    """The deterministic crash victim: cluster 0's first border proxy."""
    borders = hfc.border_nodes(0)
    if borders:
        return borders[0]
    return sorted(hfc.members(0), key=repr)[0]


def _all_services(hfc) -> set:
    names: set = set()
    for services in hfc.overlay.placement.values():
        names |= set(services)
    return names
