"""``repro.faults`` — deterministic fault injection and convergence auditing.

The paper's soft-state protocol (Section 4) and restructuring story
(Section 7) are claims about surviving loss and failure; this package is
the machinery that *tests* those claims instead of assuming them:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, pure seed-reproducible
  data describing per-link loss windows, partitions, proxy crash/restart
  with state wipe, delay jitter, duplication, and reordering;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which executes a
  plan by hooking the event simulator's delivery path, so every layer
  built on the simulator (state protocol, delta streams, data plane) runs
  under faults unmodified;
* :mod:`repro.faults.auditor` — :class:`ConvergenceAuditor` and
  :func:`run_fault_scenario`, which snapshot ground truth and assert the
  system actually reconverges after the last fault window closes;
* :mod:`repro.faults.scenarios` — the canonical seeded plans (loss burst,
  partition that heals, crash/restart, reorder+duplicate) used by the
  test suite, the resilience bench, and the CI fault-matrix smoke job.

See DESIGN.md §10 for the fault model and the auditor's invariants.
"""

from repro.faults.auditor import (
    AuditCheck,
    ConvergenceAuditor,
    FaultScenarioResult,
    run_fault_scenario,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashRestart,
    DelayJitter,
    Duplicate,
    FaultPlan,
    LinkLoss,
    Partition,
    Reorder,
)
from repro.faults.scenarios import (
    crash_restart_plan,
    loss_burst_plan,
    partition_heal_plan,
    reorder_duplicate_plan,
    standard_fault_matrix,
    super_border_crash_plan,
)

__all__ = [
    "AuditCheck",
    "ConvergenceAuditor",
    "CrashRestart",
    "DelayJitter",
    "Duplicate",
    "FaultInjector",
    "FaultPlan",
    "FaultScenarioResult",
    "LinkLoss",
    "Partition",
    "Reorder",
    "crash_restart_plan",
    "loss_burst_plan",
    "partition_heal_plan",
    "reorder_duplicate_plan",
    "run_fault_scenario",
    "standard_fault_matrix",
    "super_border_crash_plan",
]
