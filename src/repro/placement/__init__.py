"""Service-placement optimisation (the operator-side companion)."""

from repro.placement.optimizer import (
    PlacementPlan,
    demand_weights,
    greedy_kmedian,
    optimize_placement,
)

__all__ = [
    "PlacementPlan",
    "demand_weights",
    "greedy_kmedian",
    "optimize_placement",
]
