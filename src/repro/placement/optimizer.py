"""Service-placement optimisation — the operator-side companion.

The paper takes service placement as given ("services are statically
installed on proxies") and optimises routing. An operator controls the
other half of the problem: *where to install replicas*. This module closes
the loop with a greedy k-median placement optimiser:

* the replica budget per service is split proportionally to the service's
  demand (uniform or Zipf workload weights);
* each service's replicas are placed by greedy k-median on the coordinate
  space — every added replica maximally reduces the mean distance from all
  proxies to their nearest replica (the classic (1 - 1/e) facility-location
  greedy);
* per-proxy capacity is respected (no proxy hosts more than its slot count).

The E8 bench routes the same workload over demand-aware, demand-oblivious
(uniform-random) and original placements, measuring what placement alone
buys the routing layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.services.catalog import ServiceCatalog, ServiceName
from repro.services.placement import Placement
from repro.util.errors import ServiceModelError
from repro.util.rng import RngLike, ensure_rng


@dataclass
class PlacementPlan:
    """An optimised placement and the accounting behind it.

    Attributes:
        placement: the new proxy -> services map.
        replicas: replica count chosen per service.
        demand: the demand weight used per service.
    """

    placement: Placement
    replicas: Dict[ServiceName, int]
    demand: Dict[ServiceName, float]


def demand_weights(
    catalog: ServiceCatalog,
    *,
    popularity: str = "uniform",
    zipf_exponent: float = 1.0,
) -> Dict[ServiceName, float]:
    """Normalised demand weight per service (uniform or Zipf by rank)."""
    names = list(catalog.names)
    if popularity == "uniform":
        raw = [1.0] * len(names)
    elif popularity == "zipf":
        raw = [1.0 / (rank + 1) ** zipf_exponent for rank in range(len(names))]
    else:
        raise ServiceModelError(f"unknown popularity model {popularity!r}")
    total = sum(raw)
    return {name: value / total for name, value in zip(names, raw)}


def greedy_kmedian(
    space: CoordinateSpace,
    candidates: Sequence[ProxyId],
    clients: Sequence[ProxyId],
    k: int,
) -> List[ProxyId]:
    """Greedy k-median: pick k candidates minimising mean client distance.

    Each step adds the candidate with the largest marginal reduction of
    ``mean_c min_f d(c, f)`` — the standard submodular greedy.
    """
    if k < 1:
        raise ServiceModelError(f"k must be >= 1, got {k}")
    k = min(k, len(candidates))
    client_pts = space.array(list(clients))
    cand_pts = space.array(list(candidates))
    diff = client_pts[:, None, :] - cand_pts[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    chosen: List[int] = []
    best: Optional[np.ndarray] = None
    for _ in range(k):
        if best is None:
            # first facility: the exact 1-median over the candidates
            pick = int(np.argmin(dist.sum(axis=0)))
        else:
            # marginal gain of each unchosen candidate
            gains = np.sum(np.maximum(best[:, None] - dist, 0.0), axis=0)
            gains[chosen] = -1.0
            pick = int(np.argmax(gains))
            if gains[pick] <= 0:
                break  # no candidate improves coverage further
        chosen.append(pick)
        column = dist[:, pick]
        best = column.copy() if best is None else np.minimum(best, column)
    return [list(candidates)[i] for i in chosen]


def optimize_placement(
    overlay: OverlayNetwork,
    catalog: ServiceCatalog,
    *,
    replica_budget: Optional[int] = None,
    min_replicas: int = 1,
    popularity: str = "uniform",
    zipf_exponent: float = 1.0,
    seed: RngLike = None,
) -> PlacementPlan:
    """Compute a demand-aware placement for *catalog* over *overlay*.

    Args:
        overlay: target overlay (its coordinate space drives the k-median).
        catalog: the services to place.
        replica_budget: total replica slots; defaults to the current
            placement's total (so comparisons are slot-for-slot fair).
        min_replicas: floor per service (availability).
        popularity: demand model ("uniform" or "zipf").
        zipf_exponent: exponent of the Zipf model.
        seed: tie-breaking randomness for capacity overflow handling.
    """
    if overlay.space is None:
        raise ServiceModelError("placement optimisation needs a coordinate space")
    rng = ensure_rng(seed)
    proxies = list(overlay.proxies)
    if replica_budget is None:
        replica_budget = sum(len(s) for s in overlay.placement.values())
    if replica_budget < min_replicas * len(catalog):
        raise ServiceModelError(
            f"budget {replica_budget} cannot give every service "
            f"{min_replicas} replicas"
        )
    #: per-proxy capacity mirrors the current installation sizes
    capacity = {p: max(1, len(overlay.placement[p])) for p in proxies}

    demand = demand_weights(
        catalog, popularity=popularity, zipf_exponent=zipf_exponent
    )
    spare = replica_budget - min_replicas * len(catalog)
    replicas = {
        name: min_replicas + int(round(spare * share))
        for name, share in demand.items()
    }
    # a service cannot usefully exceed one replica per proxy
    for name in replicas:
        replicas[name] = min(replicas[name], len(proxies))
    # rounding drift and clamping surplus: redistribute deterministically
    names_by_demand = sorted(demand, key=lambda n: (-demand[n], n))
    drift = sum(replicas.values()) - replica_budget
    idx = 0
    stalled = 0
    while drift != 0 and stalled < len(names_by_demand):
        name = names_by_demand[idx % len(names_by_demand)]
        idx += 1
        if drift > 0 and replicas[name] > min_replicas:
            replicas[name] -= 1
            drift -= 1
            stalled = 0
        elif drift < 0 and replicas[name] < len(proxies):
            replicas[name] += 1
            drift += 1
            stalled = 0
        else:
            stalled += 1

    load: Dict[ProxyId, int] = {p: 0 for p in proxies}
    assignment: Dict[ProxyId, set] = {p: set() for p in proxies}
    # popular services place first so they get the best spots
    for name in names_by_demand:
        open_proxies = [p for p in proxies if load[p] < capacity[p]]
        if not open_proxies:
            raise ServiceModelError("placement capacity exhausted")
        picked = greedy_kmedian(
            overlay.space, open_proxies, proxies, replicas[name]
        )
        # capacity may truncate the greedy's choice below the target; pad
        # with random open proxies so availability floors hold
        while len(picked) < min(replicas[name], len(open_proxies)):
            extra = rng.choice(
                [p for p in open_proxies if p not in picked]
            )
            picked.append(extra)
        for proxy in picked:
            assignment[proxy].add(name)
            load[proxy] += 1

    placement: Placement = {
        p: frozenset(services) for p, services in assignment.items()
    }
    # every service must exist somewhere
    covered = set().union(*placement.values()) if placement else set()
    missing = [n for n in catalog.names if n not in covered]
    for name in missing:
        victim = rng.choice(proxies)
        placement[victim] = placement[victim] | {name}
    return PlacementPlan(placement=placement, replicas=replicas, demand=demand)
