"""The single-level mesh baseline topology (paper Section 6.2).

"A regular mesh is constructed with the following rules: each proxy creates
links to its 1-4 nearest neighbors, and 1-2 randomly chosen, farther located
neighbors (to make the topology connected)."

Link weights follow Section 6.1's setup: "since we used coordinates-based
distance map in the HFC framework, we will also assume this for single-level
topology service routing" — the mesh's global state is built from the same
coordinate estimates the HFC framework uses (``weight="coords"``, the
default), so both systems route on equally imprecise information and the
comparison isolates *topology*, exactly as in the paper. Passing
``weight="true"`` instead gives the mesh perfectly measured link delays — an
ablation quantifying how much of the mesh's loss is information quality.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.overlay.network import OverlayNetwork
from repro.util.errors import TopologyError
from repro.util.rng import RngLike, ensure_rng


def build_mesh(
    overlay: OverlayNetwork,
    *,
    near_min: int = 1,
    near_max: int = 4,
    far_min: int = 1,
    far_max: int = 2,
    weight: str = "coords",
    seed: RngLike = None,
) -> Graph:
    """Build the paper's regular mesh over *overlay*'s proxies.

    Each proxy links to ``U[near_min, near_max]`` nearest proxies plus
    ``U[far_min, far_max]`` uniformly random other proxies. Neighbour
    selection and link weights both use the distance map selected by
    *weight*: ``"coords"`` (coordinate estimates, the paper's setting) or
    ``"true"`` (ground-truth delays, the information-quality ablation). If
    the result is still disconnected (possible at tiny sizes), components are
    stitched with their closest cross-pairs, mirroring the paper's stated
    intent that the random links "make the topology connected".
    """
    if not 1 <= near_min <= near_max:
        raise TopologyError(f"invalid near bounds [{near_min}, {near_max}]")
    if not 0 <= far_min <= far_max:
        raise TopologyError(f"invalid far bounds [{far_min}, {far_max}]")
    if weight not in ("coords", "true"):
        raise TopologyError(f"weight must be 'coords' or 'true', got {weight!r}")
    rng = ensure_rng(seed)
    proxies = overlay.proxies
    n = len(proxies)
    mesh = Graph()
    mesh.add_nodes(proxies)
    if n == 1:
        return mesh

    if weight == "true":
        delays = overlay.true_delay_matrix()
    else:
        if overlay.space is None:
            raise TopologyError(
                "weight='coords' needs a coordinate space on the overlay"
            )
        delays = overlay.space.distance_matrix(proxies)
    order = np.argsort(delays, axis=1, kind="stable")
    for i, proxy in enumerate(proxies):
        near_count = min(rng.randint(near_min, near_max), n - 1)
        picked = 0
        for j in order[i]:
            if int(j) == i:
                continue
            mesh.add_edge(proxy, proxies[int(j)], float(delays[i, int(j)]))
            picked += 1
            if picked >= near_count:
                break
        far_count = rng.randint(far_min, far_max)
        for _ in range(far_count):
            j = rng.randrange(n)
            if j != i and not mesh.has_edge(proxy, proxies[j]):
                mesh.add_edge(proxy, proxies[j], float(delays[i, j]))

    _stitch_components(mesh, overlay, delays)
    return mesh


def _stitch_components(mesh: Graph, overlay: OverlayNetwork, delays: np.ndarray) -> None:
    """Connect any remaining components via their closest cross-pairs."""
    from repro.graph.components import connected_components

    components = connected_components(mesh)
    while len(components) > 1:
        base, other = components[0], components[1]
        base_idx = [overlay.index_of(p) for p in base]
        other_idx = [overlay.index_of(p) for p in other]
        sub = delays[np.ix_(base_idx, other_idx)]
        flat = int(np.argmin(sub))
        bi, oi = divmod(flat, sub.shape[1])
        u, v = base[bi], other[oi]
        mesh.add_edge(u, v, float(sub[bi, oi]))
        components = connected_components(mesh)


def build_gabriel_mesh(overlay: OverlayNetwork, *, weight: str = "coords") -> Graph:
    """A Gabriel-graph proximity mesh over the overlay's coordinates.

    Proxies u, v are linked iff no third proxy lies inside the circle with
    diameter (u, v) — a classic proximity structure related to the Delaunay
    meshes of the paper's reference [2]. The Gabriel graph contains the
    Euclidean MST, so it is connected by construction, and its degree adapts
    to local density instead of being fixed like the regular mesh's.

    Link weights follow *weight* ("coords" or "true") like
    :func:`build_mesh`. Deterministic (no randomness).
    """
    if weight not in ("coords", "true"):
        raise TopologyError(f"weight must be 'coords' or 'true', got {weight!r}")
    if overlay.space is None:
        raise TopologyError("a Gabriel mesh needs a coordinate space")
    proxies = overlay.proxies
    mesh = Graph()
    mesh.add_nodes(proxies)
    n = len(proxies)
    if n == 1:
        return mesh

    points = overlay.space.array(proxies)
    diff = points[:, None, :] - points[None, :, :]
    sq = np.einsum("ijk,ijk->ij", diff, diff)

    measure = (
        overlay.coordinate_distance if weight == "coords" else overlay.true_delay
    )
    for i in range(n):
        for j in range(i + 1, n):
            midpoint_sq = sq[i, j]
            # w is inside the diameter circle iff |w-u|^2 + |w-v|^2 < |u-v|^2
            inside = sq[i] + sq[j] < midpoint_sq - 1e-12
            inside[i] = inside[j] = False
            if not inside.any():
                mesh.add_edge(proxies[i], proxies[j], measure(proxies[i], proxies[j]))
    return mesh


def mesh_statistics(mesh: Graph) -> dict:
    """Degree and weight statistics of a mesh (used in reports and tests)."""
    degrees = [mesh.degree(node) for node in mesh.nodes()]
    weights: List[float] = [w for _, _, w in mesh.edges()]
    return {
        "nodes": mesh.node_count,
        "edges": mesh.edge_count,
        "degree_min": min(degrees) if degrees else 0,
        "degree_max": max(degrees) if degrees else 0,
        "degree_mean": sum(degrees) / len(degrees) if degrees else 0.0,
        "weight_mean": sum(weights) / len(weights) if weights else 0.0,
    }
