"""The Hierarchically Fully-Connected (HFC) topology (paper Section 3).

Given a proximity clustering of the overlay proxies, the HFC topology is:

* **internal links**: every pair of proxies inside a cluster is directly
  connected (small nearby groups can afford full connectivity);
* **external links**: for every pair of clusters, the two geometrically
  closest proxies — one per cluster — become that pair's *border proxies*
  and are directly connected (Section 3.3's border-selection rule);
* **visibility**: a cluster is represented to the outside by all of its
  border proxies, not by a single logical node, which keeps aggregation
  imprecision low.

Consequently any two proxies are at most two overlay hops apart through
border proxies — the property the paper credits for HFC's path efficiency.

Border selection runs on the *coordinate* space, because the elected proxy P
only has coordinates (not true delays) at its disposal. Evaluation against
ground truth therefore exercises the same imprecision the real system would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.mstcluster import Clustering
from repro.coords.space import CoordinateSpace
from repro.graph.graph import Graph
from repro.graph.shortest_paths import dijkstra, reconstruct_path
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.util.errors import TopologyError


@dataclass
class HFCTopology:
    """An HFC topology over an overlay network.

    Built via :func:`build_hfc`. ``borders[(i, j)]`` is the border proxy
    *inside cluster i* facing cluster j; the external link between clusters
    i and j runs between ``borders[(i, j)]`` and ``borders[(j, i)]``.
    """

    overlay: OverlayNetwork
    clustering: Clustering
    space: CoordinateSpace
    borders: Dict[Tuple[int, int], ProxyId]
    _matrices: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False
    )

    # -- basic accessors -----------------------------------------------------

    @property
    def cluster_count(self) -> int:
        """Number of clusters."""
        return self.clustering.cluster_count

    def cluster_of(self, proxy: ProxyId) -> int:
        """Cluster id of *proxy*."""
        return self.clustering.cluster_of(proxy)

    def members(self, cluster_id: int) -> List[ProxyId]:
        """Proxies in cluster *cluster_id*."""
        return self.clustering.members(cluster_id)

    def border(self, from_cluster: int, to_cluster: int) -> ProxyId:
        """The border proxy inside *from_cluster* facing *to_cluster*."""
        if from_cluster == to_cluster:
            raise TopologyError("no border between a cluster and itself")
        try:
            return self.borders[(from_cluster, to_cluster)]
        except KeyError:
            raise TopologyError(
                f"no border for cluster pair ({from_cluster}, {to_cluster})"
            ) from None

    def external_estimate(self, i: int, j: int) -> float:
        """Coordinate-space length of the external link between clusters i, j."""
        return self.space.distance(self.border(i, j), self.border(j, i))

    def external_true(self, i: int, j: int) -> float:
        """Ground-truth delay of the external link between clusters i and j."""
        return self.overlay.true_delay(self.border(i, j), self.border(j, i))

    def border_nodes(self, cluster_id: int) -> List[ProxyId]:
        """Distinct border proxies of *cluster_id*, sorted."""
        found = {
            proxy
            for (i, _), proxy in self.borders.items()
            if i == cluster_id
        }
        return sorted(found)

    def all_border_nodes(self) -> List[ProxyId]:
        """Distinct border proxies across the whole system, sorted."""
        return sorted(set(self.borders.values()))

    def border_load(self) -> Dict[ProxyId, int]:
        """How many cluster pairs each border proxy serves (load-balance stat).

        Section 3's geometric argument predicts this stays well below
        ``cluster_count - 1`` for reasonable clusters; the border-selection
        ablation measures it.
        """
        load: Dict[ProxyId, int] = {}
        for proxy in self.borders.values():
            load[proxy] = load.get(proxy, 0) + 1
        return load

    # -- derived structures -------------------------------------------------------

    def overlay_graph(self, weight: str = "coords") -> Graph:
        """The explicit HFC overlay graph.

        ``weight="coords"`` uses coordinate estimates (what routing sees);
        ``weight="true"`` uses ground-truth delays (what evaluation sees).
        Intra-cluster: complete; inter-cluster: border links only.
        """
        if weight not in ("coords", "true"):
            raise TopologyError(f"weight must be 'coords' or 'true', got {weight!r}")
        measure = (
            self.space.distance if weight == "coords" else self.overlay.true_delay
        )
        graph = Graph()
        graph.add_nodes(self.overlay.proxies)
        for members in self.clustering.clusters:
            for a_idx, u in enumerate(members):
                for v in members[a_idx + 1 :]:
                    graph.add_edge(u, v, measure(u, v))
        for (i, j), u in self.borders.items():
            if i < j:
                v = self.borders[(j, i)]
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v, measure(u, v))
        return graph

    def expand_hop(self, u: ProxyId, v: ProxyId) -> List[ProxyId]:
        """The relay sequence an HFC full-state router uses from *u* to *v*.

        Same-cluster pairs are direct; cross-cluster pairs go through border
        proxies along the coordinate-shortest route in the HFC overlay graph.
        """
        if u == v:
            return [u]
        if self.clustering.same_cluster(u, v):
            return [u, v]
        graph = self._cached_overlay_graph()
        dist, parent = dijkstra(graph, u, targets=[v])
        if v not in dist:
            raise TopologyError(f"{v!r} unreachable from {u!r} in HFC overlay")
        return reconstruct_path(parent, u, v)

    def _cached_overlay_graph(self) -> Graph:
        cached = getattr(self, "_overlay_graph_cache", None)
        if cached is None:
            cached = self.overlay_graph("coords")
            self._overlay_graph_cache = cached
        return cached

    def routing_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(route, true)`` distance matrices in overlay proxy-index order.

        ``route[i, j]`` is the coordinate-space length of the best HFC route
        from proxy i to proxy j (direct inside a cluster, through border
        proxies across clusters, multi-cluster relays allowed).
        ``true[i, j]`` is the ground-truth delay of *that same route* — the
        delay the data would actually experience, which is what Fig. 10
        plots. Cached after the first call.
        """
        if self._matrices is None:
            self._matrices = self._compute_matrices()
        return self._matrices

    def _compute_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        overlay = self.overlay
        proxies = overlay.proxies
        n = len(proxies)
        route = np.zeros((n, n), dtype=float)
        true = np.zeros((n, n), dtype=float)

        coords_all = self.space.array(proxies)
        true_all = overlay.true_delay_matrix()
        index = {p: i for i, p in enumerate(proxies)}

        member_idx = [
            np.array([index[p] for p in members], dtype=int)
            for members in self.clustering.clusters
        ]

        # Intra-cluster: direct links.
        for idxs in member_idx:
            pts = coords_all[idxs]
            diff = pts[:, None, :] - pts[None, :, :]
            d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            route[np.ix_(idxs, idxs)] = d
            true[np.ix_(idxs, idxs)] = true_all[np.ix_(idxs, idxs)]

        if self.cluster_count <= 1:
            np.fill_diagonal(route, 0.0)
            np.fill_diagonal(true, 0.0)
            return route, true

        # Border graph: all border proxies; intra-cluster border-border links
        # plus external links; weights are coordinate estimates, with a
        # companion true-delay along each chosen border route.
        border_list = self.all_border_nodes()
        b_index = {b: i for i, b in enumerate(border_list)}
        border_graph = Graph()
        border_graph.add_nodes(border_list)
        border_cluster = {b: self.cluster_of(b) for b in border_list}
        for a_pos, b1 in enumerate(border_list):
            for b2 in border_list[a_pos + 1 :]:
                if border_cluster[b1] == border_cluster[b2]:
                    border_graph.add_edge(b1, b2, self.space.distance(b1, b2))
        for (i, j), u in self.borders.items():
            if i < j:
                v = self.borders[(j, i)]
                if u != v and not border_graph.has_edge(u, v):
                    border_graph.add_edge(u, v, self.space.distance(u, v))

        nb = len(border_list)
        db_route = np.full((nb, nb), np.inf)
        db_true = np.full((nb, nb), np.inf)
        for b1 in border_list:
            dist, parent = dijkstra(border_graph, b1)
            i1 = b_index[b1]
            db_route[i1, i1] = 0.0
            db_true[i1, i1] = 0.0
            for b2, d in dist.items():
                if b2 == b1:
                    continue
                hops = reconstruct_path(parent, b1, b2)
                t = sum(
                    true_all[index[a], index[b]] for a, b in zip(hops, hops[1:])
                )
                db_route[i1, b_index[b2]] = d
                db_true[i1, b_index[b2]] = t

        # Per-cluster member->border direct links.
        borders_of = [
            np.array([b_index[b] for b in self.border_nodes(cid)], dtype=int)
            for cid in range(self.cluster_count)
        ]
        border_proxy_idx = np.array([index[b] for b in border_list], dtype=int)

        # P[c]: members(c) x all-borders — cheapest route from each member out
        # through any own border to every border node in the system.
        p_route: List[np.ndarray] = []
        p_true: List[np.ndarray] = []
        for cid in range(self.cluster_count):
            idxs = member_idx[cid]
            own = borders_of[cid]
            pts = coords_all[idxs]
            own_pts = coords_all[border_proxy_idx[own]]
            a_route = np.sqrt(
                np.einsum(
                    "ijk,ijk->ij",
                    pts[:, None, :] - own_pts[None, :, :],
                    pts[:, None, :] - own_pts[None, :, :],
                )
            )
            a_true = true_all[np.ix_(idxs, border_proxy_idx[own])]
            # min-plus over own borders: (m x own) + (own x nb)
            stack = a_route[:, :, None] + db_route[own][None, :, :]
            choice = np.argmin(stack, axis=1)
            pr = np.take_along_axis(stack, choice[:, None, :], axis=1)[:, 0, :]
            stack_t = a_true[:, :, None] + db_true[own][None, :, :]
            pt = np.take_along_axis(stack_t, choice[:, None, :], axis=1)[:, 0, :]
            p_route.append(pr)
            p_true.append(pt)

        # Cross-cluster distances: enter cluster j through one of its borders.
        for ci in range(self.cluster_count):
            for cj in range(self.cluster_count):
                if ci == cj:
                    continue
                idx_i = member_idx[ci]
                idx_j = member_idx[cj]
                bj = borders_of[cj]
                pts_j = coords_all[idx_j]
                bj_pts = coords_all[border_proxy_idx[bj]]
                a_route = np.sqrt(
                    np.einsum(
                        "ijk,ijk->ij",
                        pts_j[:, None, :] - bj_pts[None, :, :],
                        pts_j[:, None, :] - bj_pts[None, :, :],
                    )
                )
                a_true = true_all[np.ix_(idx_j, border_proxy_idx[bj])]
                stack = p_route[ci][:, bj][:, None, :] + a_route[None, :, :]
                choice = np.argmin(stack, axis=2)
                r = np.take_along_axis(stack, choice[:, :, None], axis=2)[:, :, 0]
                stack_t = p_true[ci][:, bj][:, None, :] + a_true[None, :, :]
                t = np.take_along_axis(stack_t, choice[:, :, None], axis=2)[:, :, 0]
                route[np.ix_(idx_i, idx_j)] = r
                true[np.ix_(idx_i, idx_j)] = t

        np.fill_diagonal(route, 0.0)
        np.fill_diagonal(true, 0.0)
        return route, true


def closest_cross_pair(
    block_i: np.ndarray, block_j: np.ndarray
) -> Tuple[int, int]:
    """Row/column indices of the closest cross pair between two blocks.

    The blocked distance-matrix minimum at the heart of border selection.
    Arithmetic and argmin tie-breaking (earliest row, then earliest column,
    wins) are identical to :meth:`CoordinateSpace.closest_pair`, so full
    scans and incremental per-pair patches select the same borders — the
    equivalence suite asserts this.
    """
    diff = block_i[:, None, :] - block_j[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    flat = int(np.argmin(dist))
    return divmod(flat, dist.shape[1])


def select_borders_closest(
    space: CoordinateSpace, clustering: Clustering
) -> Dict[Tuple[int, int], ProxyId]:
    """Closest-pair border selection for every cluster pair, vectorized.

    Fetches each cluster's coordinate block once and reduces every cluster
    pair with one blocked distance-matrix minimum (cdist-style), instead of
    re-materialising both clusters' coordinates for each of the k(k-1)/2
    pairs the way per-pair :meth:`CoordinateSpace.closest_pair` calls do.
    """
    k = clustering.cluster_count
    members = [clustering.members(i) for i in range(k)]
    blocks = [space.array(m) for m in members]
    borders: Dict[Tuple[int, int], ProxyId] = {}
    for i in range(k):
        for j in range(i + 1, k):
            a, b = closest_cross_pair(blocks[i], blocks[j])
            borders[(i, j)] = members[i][a]
            borders[(j, i)] = members[j][b]
    return borders


def patch_borders_for_cluster(
    borders: Dict[Tuple[int, int], ProxyId],
    cluster_id: int,
    members: List[List[ProxyId]],
    blocks: List[np.ndarray],
) -> None:
    """Re-select, in place, every border pair involving *cluster_id*.

    The incremental membership layer calls this after a join or leave
    touched one cluster: only the k-1 pairs that include the changed
    cluster are re-reduced, each with the same blocked
    :func:`closest_cross_pair` kernel the full scan uses, so the patched
    ``borders`` dict is bit-identical to rerunning
    :func:`select_borders_closest` from scratch. Pairs are always computed
    in ``(min, max)`` cluster-id orientation to preserve the full scan's
    tie-break direction.
    """
    k = len(members)
    for other in range(k):
        if other == cluster_id:
            continue
        i, j = (cluster_id, other) if cluster_id < other else (other, cluster_id)
        a, b = closest_cross_pair(blocks[i], blocks[j])
        borders[(i, j)] = members[i][a]
        borders[(j, i)] = members[j][b]


def drop_cluster_from_borders(
    borders: Dict[Tuple[int, int], ProxyId], removed: int
) -> Dict[Tuple[int, int], ProxyId]:
    """Borders after cluster *removed* vanished and higher ids shifted down.

    Matches the cluster-id compaction rule (surviving ids stay in sorted
    order, so every id above *removed* decreases by one); pairs touching
    the removed cluster are discarded.
    """
    compacted: Dict[Tuple[int, int], ProxyId] = {}
    for (i, j), proxy in borders.items():
        if i == removed or j == removed:
            continue
        compacted[(i - (i > removed), j - (j > removed))] = proxy
    return compacted


def select_borders_closest_reference(
    space: CoordinateSpace, clustering: Clustering
) -> Dict[Tuple[int, int], ProxyId]:
    """The pre-vectorization border scan: one :meth:`closest_pair` per pair.

    Kept as the reference path for the equivalence tests and the
    construction benchmark.
    """
    borders: Dict[Tuple[int, int], ProxyId] = {}
    k = clustering.cluster_count
    for i in range(k):
        for j in range(i + 1, k):
            a, b, _ = space.closest_pair(
                clustering.members(i), clustering.members(j)
            )
            borders[(i, j)] = a
            borders[(j, i)] = b
    return borders


def build_hfc(
    overlay: OverlayNetwork,
    clustering: Clustering,
    space: Optional[CoordinateSpace] = None,
    *,
    border_rule: str = "closest",
    seed=None,
    engine: str = "vectorized",
) -> HFCTopology:
    """Construct the HFC topology from a clustering (paper Section 3.3).

    For every cluster pair, the geometrically closest cross-pair of proxies
    becomes the border pair (``border_rule="closest"``, the paper's rule).
    ``border_rule="random"`` picks a uniform random cross-pair instead — the
    ablation quantifying how much the selection rule buys. *space* defaults
    to the overlay's attached coordinate space. *engine* selects the
    closest-pair kernel: ``"vectorized"`` (blocked matrix minima, the
    default) or ``"reference"`` (the original per-pair scan); both return
    identical borders.
    """
    from repro.util.rng import ensure_rng

    space = space or overlay.space
    if space is None:
        raise TopologyError("an HFC topology needs a coordinate space")
    if border_rule not in ("closest", "random"):
        raise TopologyError(
            f"border_rule must be 'closest' or 'random', got {border_rule!r}"
        )
    if engine not in ("vectorized", "reference"):
        raise TopologyError(
            f"engine must be 'vectorized' or 'reference', got {engine!r}"
        )
    for proxy in overlay.proxies:
        if proxy not in clustering.labels:
            raise TopologyError(f"proxy {proxy!r} missing from clustering")

    if border_rule == "closest":
        if engine == "vectorized":
            borders = select_borders_closest(space, clustering)
        else:
            borders = select_borders_closest_reference(space, clustering)
    else:
        rng = ensure_rng(seed)
        borders = {}
        k = clustering.cluster_count
        for i in range(k):
            for j in range(i + 1, k):
                borders[(i, j)] = rng.choice(clustering.members(i))
                borders[(j, i)] = rng.choice(clustering.members(j))
    return HFCTopology(
        overlay=overlay, clustering=clustering, space=space, borders=borders
    )
