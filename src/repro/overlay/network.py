"""The service overlay network: proxies on routers, services on proxies.

An :class:`OverlayNetwork` ties together the three substrates every routing
strategy consumes: the physical delay oracle, the proxy set (identified by
the routers they sit on), and the static service placement. The optional
coordinate space is attached after the landmark embedding runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.coords.space import CoordinateSpace
from repro.netsim.physical import PhysicalNetwork
from repro.services.catalog import ServiceName
from repro.services.placement import Placement
from repro.util.errors import ServiceModelError, TopologyError

ProxyId = int


@dataclass
class OverlayNetwork:
    """Proxies + services + delay oracle.

    Attributes:
        physical: the physical-network substrate.
        proxies: the routers hosting overlay proxies (a proxy is identified
            by its router id).
        placement: static service installation per proxy.
        space: network-coordinate space over the proxies (None until the
            embedding step has run).
    """

    physical: PhysicalNetwork
    proxies: List[ProxyId]
    placement: Placement
    space: Optional[CoordinateSpace] = None
    _index: Dict[ProxyId, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.proxies:
            raise TopologyError("overlay needs at least one proxy")
        if len(set(self.proxies)) != len(self.proxies):
            raise TopologyError("duplicate proxy ids")
        missing = [p for p in self.proxies if p not in self.placement]
        if missing:
            raise ServiceModelError(f"proxies without service placement: {missing[:5]}")
        self._index = {p: i for i, p in enumerate(self.proxies)}

    @property
    def size(self) -> int:
        """Number of proxies."""
        return len(self.proxies)

    def index_of(self, proxy: ProxyId) -> int:
        """Dense index of *proxy* (for matrix-based providers)."""
        try:
            return self._index[proxy]
        except KeyError:
            raise TopologyError(f"unknown proxy {proxy!r}") from None

    def services_of(self, proxy: ProxyId) -> FrozenSet[ServiceName]:
        """Services installed on *proxy*."""
        self.index_of(proxy)
        return self.placement[proxy]

    def providers_of(self, service: ServiceName) -> List[ProxyId]:
        """All proxies hosting *service*."""
        return [p for p in self.proxies if service in self.placement[p]]

    def true_delay(self, u: ProxyId, v: ProxyId) -> float:
        """Ground-truth end-to-end delay between two proxies."""
        return self.physical.delay(u, v)

    def true_delay_matrix(self) -> np.ndarray:
        """Dense ground-truth delay matrix in proxy-index order (cached)."""
        cached = getattr(self, "_true_matrix", None)
        if cached is None:
            cached = self.physical.delay_matrix(self.proxies)
            self._true_matrix = cached
        return cached

    def coordinate_distance(self, u: ProxyId, v: ProxyId) -> float:
        """Estimated (coordinate-space) distance between two proxies."""
        if self.space is None:
            raise TopologyError("overlay has no coordinate space attached")
        return self.space.distance(u, v)
