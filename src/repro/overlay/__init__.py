"""Overlay layer: proxy network, mesh baseline, HFC topology."""

from repro.overlay.hfc import (
    HFCTopology,
    build_hfc,
    select_borders_closest,
    select_borders_closest_reference,
)
from repro.overlay.mesh import build_gabriel_mesh, build_mesh, mesh_statistics
from repro.overlay.network import OverlayNetwork, ProxyId

__all__ = [
    "HFCTopology",
    "OverlayNetwork",
    "ProxyId",
    "build_gabriel_mesh",
    "build_hfc",
    "build_mesh",
    "mesh_statistics",
    "select_borders_closest",
    "select_borders_closest_reference",
]
