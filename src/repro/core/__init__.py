"""Public API: the HFC framework facade, configuration, and versioning."""

from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework
from repro.core.versioning import (
    CapabilityFeed,
    ChangeNotifier,
    MutableCapabilityFeed,
    OverlayVersion,
)

__all__ = [
    "CapabilityFeed",
    "ChangeNotifier",
    "FrameworkConfig",
    "HFCFramework",
    "MutableCapabilityFeed",
    "OverlayVersion",
]
