"""Public API: the HFC framework facade and its configuration."""

from repro.core.config import FrameworkConfig
from repro.core.framework import HFCFramework

__all__ = ["FrameworkConfig", "HFCFramework"]
