"""All tunables of the HFC framework, in one dataclass.

Defaults reproduce the paper's simulation setting (Table 1 flavour):
2-dimensional coordinate space, 10 landmarks, 4-10 services per proxy,
MST clustering with inconsistency factor 2, mesh baseline with 1-4 near +
1-2 random links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.mstcluster import ClusteringConfig
from repro.netsim.topology import TransitStubConfig
from repro.util.errors import ReproError


@dataclass
class FrameworkConfig:
    """Construction parameters of an :class:`~repro.core.framework.HFCFramework`.

    Attributes:
        physical_nodes: routers in the physical topology (Table 1 pairs this
            with the proxy count at roughly 1.2 routers per proxy).
        landmark_count: landmarks for the coordinate embedding (paper: 10).
        dimension: coordinate-space dimension k (paper: 2).
        probes: delay measurements per pair; the minimum is kept.
        measurement_noise: multiplicative noise amplitude on each probe.
        min_services_per_proxy / max_services_per_proxy: Table 1's 4-10.
        instances_per_service: target replicas per service; sizes the
            generated catalog so provider counts stay scale-invariant.
        clustering: Zahn-clusterer tunables.
        transit_stub: physical-topology generator tunables.
        mesh_weight: distance map the mesh baseline uses ("coords" per the
            paper's Section 6.1, "true" for the information ablation).
        vectorized_construction: run the Section-3 construction pipeline
            through the batched numpy kernels (embedding, MST, border
            selection). ``False`` pins the original per-pair/per-host
            reference path — same clusters and borders, only slower.
        embedding_workers: optional process-pool size for the per-proxy
            coordinate solves (proxies embed independently given the
            landmarks); ``None`` solves in-process.
        query_workers: optional process-pool size for the conquer step of
            batched routing (``route_many``); ``None`` solves in-process.
            The conquer fan-out is result-invariant, so this is purely a
            throughput knob — the query-path twin of ``embedding_workers``.
        sim_shards: default shard count for event simulators built via
            :meth:`HFCFramework.simulator`. ``None``/1 keeps the monolithic
            single-heap engine; higher values partition proxies by cluster
            into per-shard heaps with conservative-window exchange —
            results are shard-count-invariant, so this too is purely a
            throughput knob.
    """

    physical_nodes: Optional[int] = None
    landmark_count: int = 10
    dimension: int = 2
    probes: int = 3
    measurement_noise: float = 0.10
    min_services_per_proxy: int = 4
    max_services_per_proxy: int = 10
    instances_per_service: float = 8.0
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    transit_stub: TransitStubConfig = field(default_factory=TransitStubConfig)
    mesh_weight: str = "coords"
    vectorized_construction: bool = True
    embedding_workers: Optional[int] = None
    query_workers: Optional[int] = None
    sim_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.landmark_count < self.dimension + 1:
            raise ReproError(
                f"need at least dimension+1={self.dimension + 1} landmarks, "
                f"got {self.landmark_count}"
            )
        if self.probes < 1:
            raise ReproError("probes must be >= 1")
        if self.measurement_noise < 0:
            raise ReproError("measurement_noise must be >= 0")
        if not 1 <= self.min_services_per_proxy <= self.max_services_per_proxy:
            raise ReproError("invalid services-per-proxy bounds")
        if self.mesh_weight not in ("coords", "true"):
            raise ReproError("mesh_weight must be 'coords' or 'true'")
        if self.embedding_workers is not None and self.embedding_workers < 1:
            raise ReproError("embedding_workers must be >= 1 or None")
        if self.query_workers is not None and self.query_workers < 1:
            raise ReproError("query_workers must be >= 1 or None")
        if self.sim_shards is not None and self.sim_shards < 1:
            raise ReproError("sim_shards must be >= 1 or None")

    def physical_size_for(self, proxy_count: int) -> int:
        """Physical topology size for *proxy_count* proxies.

        Table 1 uses 300/600/900/1200 routers for 250/500/750/1000 proxies;
        1.2 routers per proxy reproduces that ratio at any scale, floored to
        keep the transit-stub generator satisfiable.
        """
        if self.physical_nodes is not None:
            return self.physical_nodes
        cfg = self.transit_stub
        transit = cfg.transit_domains * cfg.transit_nodes_per_domain
        minimum = transit + 2 * transit * cfg.stub_domains_per_transit_node
        return max(int(round(proxy_count * 1.2)), minimum, proxy_count + transit)
