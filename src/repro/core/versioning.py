"""Overlay versioning and change propagation.

The incremental overlay core (membership patches, delta state
announcements, version-aware routing caches) needs one shared notion of
"has the world changed since I last looked?". This module provides it:

* :class:`OverlayVersion` — a monotonically increasing ``(epoch, step)``
  pair. ``step`` advances on every local mutation (a join, a leave, a
  capability change); ``epoch`` advances on structural rebuilds
  (``restructure()``), which invalidate anything derived from cluster
  ids. Versions are totally ordered and hashable, so consumers can cache
  the last version they acted on and compare.
* :class:`ChangeNotifier` — a minimal synchronous publish/subscribe hub;
  the membership layer notifies on every event, the state/routing layers
  subscribe.
* :class:`CapabilityFeed` — the read side of a *versioned* cluster
  capability view (cluster id -> frozenset of service names). Routers
  poll ``feed.version`` and refresh from ``feed.capabilities()`` only
  when it moved, replacing the old "caller must remember to call
  ``invalidate()``" contract.
* :class:`MutableCapabilityFeed` — an in-memory feed whose owner calls
  :meth:`~MutableCapabilityFeed.publish` when the view changes.

Anything exposing ``.version`` (orderable, equatable) and
``.capabilities()`` satisfies the feed contract — the state protocol
publishes its own feed backed by live SCT_C tables without importing
this module's classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional

from repro.util.errors import ReproError

#: capability view type: cluster id -> services available in that cluster
ClusterCapabilities = Dict[int, FrozenSet[str]]


@dataclass(frozen=True, order=True)
class OverlayVersion:
    """A totally ordered ``(epoch, step)`` overlay version stamp.

    ``epoch`` counts structural rebuilds (restructures), ``step`` counts
    mutations within an epoch. Lexicographic ordering means any event —
    local or structural — produces a strictly larger version.
    """

    epoch: int = 0
    step: int = 0

    def bump(self) -> "OverlayVersion":
        """The next version after a local mutation (join/leave/update)."""
        return OverlayVersion(self.epoch, self.step + 1)

    def bump_epoch(self) -> "OverlayVersion":
        """The next version after a structural rebuild (restructure)."""
        return OverlayVersion(self.epoch + 1, 0)

    def __str__(self) -> str:
        return f"{self.epoch}.{self.step}"


class ChangeNotifier:
    """Synchronous fan-out of overlay change events.

    Subscribers are called in subscription order with
    ``callback(version, **info)``; exceptions propagate to the mutator
    (changes are applied before notification, so state stays coherent).
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[..., None]] = []

    def subscribe(self, callback: Callable[..., None]) -> Callable[..., None]:
        """Register *callback*; returns it so it can be unsubscribed."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[..., None]) -> None:
        """Remove a previously registered *callback* (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def notify(self, version: OverlayVersion, **info: object) -> None:
        """Deliver ``(version, **info)`` to every subscriber."""
        for callback in list(self._subscribers):
            callback(version, **info)

    def __len__(self) -> int:
        return len(self._subscribers)


class CapabilityFeed:
    """Read side of a versioned cluster-capability view.

    Consumers remember the last ``version`` they synchronised at and call
    :meth:`capabilities` again only when the feed's version differs.
    ``version`` may be any equatable value that changes whenever the view
    does (an :class:`OverlayVersion`, a table revision counter, ...).
    """

    @property
    def version(self) -> object:
        raise NotImplementedError

    def capabilities(self) -> Mapping[int, FrozenSet[str]]:
        """The current cluster id -> services view (callers must copy)."""
        raise NotImplementedError


class MutableCapabilityFeed(CapabilityFeed):
    """A capability feed updated explicitly through :meth:`publish`."""

    def __init__(
        self, capabilities: Optional[Mapping[int, FrozenSet[str]]] = None
    ) -> None:
        self._capabilities: ClusterCapabilities = {
            cid: frozenset(services)
            for cid, services in (capabilities or {}).items()
        }
        self._version = OverlayVersion()
        self.notifier = ChangeNotifier()

    @property
    def version(self) -> OverlayVersion:
        return self._version

    def capabilities(self) -> ClusterCapabilities:
        return self._capabilities

    def publish(
        self,
        capabilities: Mapping[int, FrozenSet[str]],
        *,
        restructured: bool = False,
    ) -> OverlayVersion:
        """Replace the view and advance the version.

        ``restructured=True`` advances the epoch instead of the step —
        use it when cluster ids themselves were reassigned, so consumers
        can distinguish "same clusters, new services" from "new world".
        """
        self._capabilities = {
            cid: frozenset(services) for cid, services in capabilities.items()
        }
        self._version = (
            self._version.bump_epoch() if restructured else self._version.bump()
        )
        self.notifier.notify(self._version)
        return self._version

    def update_cluster(self, cluster_id: int, services: FrozenSet[str]) -> OverlayVersion:
        """Publish a single-cluster change (step bump)."""
        if cluster_id < 0:
            raise ReproError(f"invalid cluster id {cluster_id}")
        updated = dict(self._capabilities)
        updated[cluster_id] = frozenset(services)
        return self.publish(updated)
