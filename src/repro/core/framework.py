"""The public facade: build an HFC service-overlay and route requests.

:class:`HFCFramework` wires the whole pipeline of the paper together:

1. generate (or accept) a physical transit-stub network;
2. place proxies on stub routers and install services (Table 1 style);
3. obtain the distance map via landmark embedding (Section 3.1);
4. cluster by Zahn's MST method (Section 3.2) and select border proxies
   (Section 3.3) — yielding the HFC topology;
5. expose the routing strategies of Section 5 / Section 6.2 plus the state
   protocol of Section 4.

Typical use::

    framework = HFCFramework.build(proxy_count=250, seed=7)
    router = framework.hierarchical_router()
    request = framework.random_request(seed=1)
    path = router.route(request)
    print(path, path.true_delay(framework.overlay))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.mstcluster import Clustering, cluster_nodes
from repro.coords.embedding import EmbeddingReport, build_coordinate_space
from repro.coords.space import CoordinateSpace
from repro.core.config import FrameworkConfig
from repro.core.versioning import MutableCapabilityFeed
from repro.graph.graph import Graph
from repro.graph.mst import euclidean_mst, euclidean_mst_reference
from repro.netsim.physical import PhysicalNetwork
from repro.netsim.topology import transit_stub
from repro.overlay.hfc import HFCTopology, build_hfc
from repro.overlay.mesh import build_mesh
from repro.overlay.network import OverlayNetwork
from repro.routing.flat import FlatRouter, coordinate_router, oracle_router
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.meshrouting import MeshRouter, hfc_full_state_router
from repro.services.catalog import ServiceCatalog, scaled_catalog
from repro.services.graph import linear_graph
from repro.services.placement import aggregate_capability, install_services
from repro.services.request import ServiceRequest
from repro.state.columnar import ColumnarOverlayState, attach_columnar
from repro.state.overhead import (
    mean_coordinates_overhead,
    mean_service_overhead,
)
from repro.state.protocol import ProtocolReport, StateDistributionProtocol
from repro.util.errors import ReproError
from repro.util.rng import RngLike, ensure_rng, spawn


@dataclass
class HFCFramework:
    """A fully built HFC service-overlay system."""

    config: FrameworkConfig
    physical: PhysicalNetwork
    overlay: OverlayNetwork
    catalog: ServiceCatalog
    space: CoordinateSpace
    embedding_report: EmbeddingReport
    clustering: Clustering
    hfc: HFCTopology

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        proxy_count: int,
        *,
        config: Optional[FrameworkConfig] = None,
        physical: Optional[PhysicalNetwork] = None,
        catalog: Optional[ServiceCatalog] = None,
        seed: RngLike = None,
        telemetry=None,
    ) -> "HFCFramework":
        """Build the full pipeline for *proxy_count* proxies.

        Args:
            proxy_count: overlay size n.
            config: framework tunables (defaults reproduce the paper).
            physical: pre-built physical network; generated when None.
            catalog: service catalog; a scale-invariant generic catalog is
                generated when None.
            seed: master seed; every stage derives an independent stream.
            telemetry: optional :class:`~repro.telemetry.Telemetry` scope
                for the ``construct.*`` phase spans; defaults to the
                process scope.
        """
        from repro.telemetry import get_telemetry

        if proxy_count < 2:
            raise ReproError("proxy_count must be >= 2")
        config = config or FrameworkConfig()
        rng = ensure_rng(seed)
        telemetry = telemetry if telemetry is not None else get_telemetry()
        tracer = telemetry.tracer
        vectorized = config.vectorized_construction

        with tracer.span("construct", proxies=proxy_count, vectorized=vectorized):
            if physical is None:
                with tracer.span("construct.topology"):
                    topo = transit_stub(
                        config.physical_size_for(proxy_count),
                        config=config.transit_stub,
                        seed=spawn(rng, "topology"),
                    )
                    physical = PhysicalNetwork(
                        topo,
                        noise=config.measurement_noise,
                        seed=spawn(rng, "noise"),
                    )
            proxies = physical.pick_overlay_nodes(
                proxy_count, seed=spawn(rng, "proxies")
            )

            with tracer.span("construct.embedding"):
                space, report = build_coordinate_space(
                    physical,
                    proxies,
                    landmark_count=config.landmark_count,
                    dimension=config.dimension,
                    probes=config.probes,
                    seed=spawn(rng, "embedding"),
                    vectorized=vectorized,
                    workers=config.embedding_workers,
                    telemetry=telemetry,
                )

            with tracer.span("construct.services"):
                if catalog is None:
                    mean_services = (
                        config.min_services_per_proxy + config.max_services_per_proxy
                    ) / 2.0
                    catalog = scaled_catalog(
                        proxy_count,
                        services_per_proxy_mean=mean_services,
                        instances_per_service=config.instances_per_service,
                    )
                placement = install_services(
                    proxies,
                    catalog,
                    min_per_proxy=config.min_services_per_proxy,
                    max_per_proxy=min(config.max_services_per_proxy, len(catalog)),
                    seed=spawn(rng, "placement"),
                )
            overlay = OverlayNetwork(
                physical=physical, proxies=proxies, placement=placement, space=space
            )
            with tracer.span("construct.clustering"):
                clustering = cluster_nodes(
                    space,
                    proxies,
                    config.clustering,
                    mst=euclidean_mst if vectorized else euclidean_mst_reference,
                )
            with tracer.span("construct.borders", clusters=clustering.cluster_count):
                hfc = build_hfc(
                    overlay,
                    clustering,
                    engine="vectorized" if vectorized else "reference",
                )
            with tracer.span("construct.columnar"):
                attach_columnar(
                    hfc,
                    ColumnarOverlayState.from_parts(
                        proxies=list(proxies),
                        space=space,
                        clustering=clustering,
                        borders=hfc.borders,
                        placement=placement,
                    ),
                )
        return cls(
            config=config,
            physical=physical,
            overlay=overlay,
            catalog=catalog,
            space=space,
            embedding_report=report,
            clustering=clustering,
            hfc=hfc,
        )

    @property
    def columnar(self) -> ColumnarOverlayState:
        """The struct-of-arrays overlay state attached to :attr:`hfc`.

        Frameworks assembled outside :meth:`build` (e.g. restored by
        ``repro.persistence``) get theirs built and attached on first
        access, so every framework exposes the shared columnar view.
        """
        state = getattr(self.hfc, "columnar", None)
        if state is None:
            state = ColumnarOverlayState.from_framework(self)
            attach_columnar(self.hfc, state)
        return state

    def simulator(
        self,
        *,
        shards: Optional[int] = None,
        telemetry=None,
        lookahead: Optional[float] = None,
    ):
        """An event simulator for this overlay, sharded when asked.

        *shards* defaults to ``config.sim_shards``; 1 (or ``None``) returns
        the monolithic :class:`~repro.netsim.eventsim.Simulator`. Higher
        counts partition proxies by hierarchy cluster (clamped to the
        cluster count) with the exact physical cross-shard delay as the
        conservative lookahead — results are shard-count-invariant.
        """
        from repro.netsim.eventsim import Simulator
        from repro.netsim.shard import ShardedSimulator, ShardPlan

        count = shards if shards is not None else (self.config.sim_shards or 1)
        count = min(count, self.columnar.cluster_count)
        if count <= 1:
            return Simulator(telemetry=telemetry)
        plan = ShardPlan.from_framework(self, count, lookahead=lookahead)
        return ShardedSimulator(plan, telemetry=telemetry)

    # -- recursive hierarchy -------------------------------------------------------

    def build_hierarchy(
        self,
        levels: int = 3,
        *,
        method: str = "kcenter",
        seed: RngLike = 0,
        group_counts=None,
        reuse: bool = True,
    ):
        """Build (or restore) a depth-*levels* recursive hierarchy.

        The single entry point of the level-generic hierarchy:
        ``levels=2`` wraps the bi-level HFC untouched, every extra level
        re-clusters the centroids of the level below (greedy k-center by
        default, ``method="mst"`` for Zahn's machinery) and selects
        borders by the closest-pair rule one level up. The resulting
        upper-level CSR arrays are attached to :attr:`columnar`, so
        snapshots round-trip the full stack and per-level query tables
        are shared zero-copy with every router built from it.

        When *reuse* is true and the columnar state already carries a
        stack of the right depth (e.g. a framework restored from a
        snapshot), that stack is materialised directly — no
        re-clustering or border re-selection runs.
        """
        from repro.hierarchy.levels import build_levels, levels_from_columnar

        state = self.columnar
        if reuse and len(state.levels) == levels - 2:
            return levels_from_columnar(state, self.hfc) if state.levels else (
                build_levels(self.hfc, 2)
            )
        hierarchy = build_levels(
            self.hfc,
            levels,
            method=method,
            seed=seed,
            group_counts=group_counts,
        )
        state.attach_levels(hierarchy.levels)
        hierarchy.columnar = state
        return hierarchy

    def hierarchy_router(
        self,
        levels: int = 3,
        method: str = "backtrack",
        *,
        hierarchy=None,
        **kwargs,
    ):
        """A router over a depth-*levels* recursive hierarchy.

        ``levels=2`` is exactly :meth:`hierarchical_router`; deeper
        hierarchies route with the recursive divide-and-conquer router.
        Pass a pre-built *hierarchy* to skip construction (``levels`` is
        then ignored).
        """
        from repro.hierarchy.levels import RecursiveRouter

        if hierarchy is None:
            hierarchy = self.build_hierarchy(levels)
        if hierarchy.depth == 2:
            return self.hierarchical_router(method=method, **kwargs)
        return RecursiveRouter(hierarchy, method=method, **kwargs)

    # -- routers -------------------------------------------------------------------

    def hierarchical_router(
        self, method: str = "backtrack", **kwargs
    ) -> HierarchicalRouter:
        """The paper's divide-and-conquer router (HFC with aggregation).

        Extra keyword arguments (``csp_engine``, ``query_workers``, ...)
        pass through to :class:`HierarchicalRouter`; ``query_workers``
        defaults to the framework config's value.
        """
        kwargs.setdefault("query_workers", self.config.query_workers)
        return HierarchicalRouter(self.hfc, method=method, **kwargs)

    def cached_hierarchical_router(
        self,
        method: str = "backtrack",
        cache_size: int = 1024,
        capability_feed=None,
        **kwargs,
    ):
        """The hierarchical router with CSP memoisation (production shape).

        Pass ``capability_feed`` (e.g. :meth:`capability_feed` or a
        protocol's feed) to make cache invalidation version-driven: the
        router drops its CSPs exactly when the feed's version moves.
        """
        from repro.routing.cache import CachedHierarchicalRouter

        kwargs.setdefault("query_workers", self.config.query_workers)
        return CachedHierarchicalRouter(
            self.hfc,
            method=method,
            cache_size=cache_size,
            capability_feed=capability_feed,
            **kwargs,
        )

    def mesh_router(self, *, seed: RngLike = None, mesh: Optional[Graph] = None) -> MeshRouter:
        """The single-level mesh baseline router."""
        if mesh is None:
            mesh = build_mesh(
                self.overlay, weight=self.config.mesh_weight, seed=seed
            )
        return MeshRouter(self.overlay, mesh)

    def full_state_router(self) -> FlatRouter:
        """HFC topology without aggregation (full state at every proxy)."""
        return hfc_full_state_router(self.hfc)

    def flat_router(self) -> FlatRouter:
        """Flat fully-connected routing over coordinates (upper reference)."""
        return coordinate_router(self.overlay)

    def oracle_router(self) -> FlatRouter:
        """Flat routing over ground-truth delays (the unbeatable bound)."""
        return oracle_router(self.overlay)

    # -- requests -----------------------------------------------------------------

    def random_request(
        self,
        *,
        min_length: int = 4,
        max_length: int = 10,
        seed: RngLike = None,
    ) -> ServiceRequest:
        """A Table-1-style random linear request between two random proxies."""
        rng = ensure_rng(seed)
        src, dst = rng.sample(self.overlay.proxies, 2)
        length = rng.randint(min_length, max_length)
        names = [rng.choice(list(self.catalog.names)) for _ in range(length)]
        return ServiceRequest(src, linear_graph(names), dst)

    # -- state & overheads ---------------------------------------------------------

    def capability_feed(self) -> MutableCapabilityFeed:
        """A versioned cluster-capability view seeded with exact aggregation.

        The feed starts from ground truth (the Section-4 aggregation rule
        applied to the current placement) and is thereafter advanced by
        whoever owns it — :meth:`MutableCapabilityFeed.publish` on
        membership or placement changes. Bind it to a
        :meth:`cached_hierarchical_router` for version-driven cache
        invalidation.
        """
        return MutableCapabilityFeed(
            {
                cid: aggregate_capability(
                    self.overlay.placement, self.hfc.members(cid)
                )
                for cid in range(self.hfc.cluster_count)
            }
        )

    def run_state_protocol(
        self,
        max_time: float = 20000.0,
        seed: RngLike = None,
        *,
        mode: str = "delta",
        refresh_every: int = 4,
    ) -> ProtocolReport:
        """Simulate the Section-4 protocol to convergence; returns its report.

        ``mode="delta"`` (default) uses sequence-numbered delta
        announcements with a full refresh every ``refresh_every`` periods;
        ``mode="full"`` reproduces the legacy always-full behaviour.
        """
        protocol = StateDistributionProtocol(
            self.hfc, seed=seed, mode=mode, refresh_every=refresh_every
        )
        return protocol.run(max_time=max_time)

    def coordinates_overhead(self) -> Dict[str, float]:
        """Fig. 9(a) point: flat vs hierarchical coordinate node-states."""
        return {
            "flat": float(self.overlay.size),
            "hierarchical": mean_coordinates_overhead(self.hfc),
        }

    def service_overhead(self) -> Dict[str, float]:
        """Fig. 9(b) point: flat vs hierarchical service node-states."""
        return {
            "flat": float(self.overlay.size),
            "hierarchical": mean_service_overhead(self.hfc),
        }

    # -- summary --------------------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable summary of the built system."""
        sizes = self.clustering.sizes()
        return (
            f"HFCFramework(n={self.overlay.size} proxies on "
            f"{self.physical.graph.node_count} routers, "
            f"{self.clustering.cluster_count} clusters "
            f"(sizes {min(sizes)}..{max(sizes)}), "
            f"{len(self.hfc.all_border_nodes())} border proxies, "
            f"catalog of {len(self.catalog)} services, "
            f"k={self.space.dimension} coordinates)"
        )
