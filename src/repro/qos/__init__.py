"""QoS extension (paper Section 7 future work): bandwidth-aware routing."""

from repro.qos.bandwidth import (
    BandwidthAwareProvider,
    BandwidthModel,
    QoSHierarchicalRouter,
    cluster_pair_bandwidth,
    intra_cluster_bandwidth_stats,
    qos_flat_router,
)

__all__ = [
    "BandwidthAwareProvider",
    "BandwidthModel",
    "QoSHierarchicalRouter",
    "cluster_pair_bandwidth",
    "intra_cluster_bandwidth_stats",
    "qos_flat_router",
]
