"""QoS extension: bandwidth-aware service routing (paper Section 7).

"How to embed QoS (e.g., network bandwidth, machine load, machine
volatility) into hierarchical service topologies, and properly aggregate
those pieces of information into meaningful service routing state, are
important issues."

This extension implements the bandwidth half of that future work:

* a :class:`BandwidthModel` assigns capacities to physical links (transit
  links fat, stub links thin); an overlay link's bandwidth is the bottleneck
  along the shortest-delay physical route between its endpoints;
* :class:`BandwidthAwareProvider` masks overlay links below a requested
  bandwidth to infinity, turning the existing service-DAG solvers into
  *widest-shortest* routers (shortest delay among bandwidth-feasible paths);
* :class:`QoSHierarchicalRouter` runs the divide-and-conquer routing with
  bandwidth-pruned cluster-level edges (an external link below the
  requirement disqualifies that cluster transition) and bandwidth-pruned
  intra-cluster links;
* aggregation helpers expose the pessimistic/optimistic cluster-pair
  bandwidth aggregates a Section-4-style protocol would distribute.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.netsim.physical import PhysicalNetwork
from repro.overlay.hfc import HFCTopology
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.routing.flat import FlatRouter
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.providers import CoordinateProvider, DistanceProvider
from repro.util.errors import RoutingError
from repro.util.rng import RngLike, ensure_rng


class BandwidthModel:
    """Capacities on physical links; bottleneck queries for overlay links.

    Args:
        physical: the physical network.
        stub_range: uniform capacity range (Mbps) for stub-incident links.
        transit_range: uniform capacity range for transit-transit links.
        seed: RNG seed for the capacity draw.
    """

    def __init__(
        self,
        physical: PhysicalNetwork,
        *,
        stub_range: Tuple[float, float] = (10.0, 100.0),
        transit_range: Tuple[float, float] = (155.0, 1000.0),
        seed: RngLike = None,
    ) -> None:
        if stub_range[0] <= 0 or transit_range[0] <= 0:
            raise RoutingError("bandwidth ranges must be positive")
        self.physical = physical
        rng = ensure_rng(seed)
        kinds = physical.topology.node_kind
        self._capacity: Dict[Tuple[int, int], float] = {}
        for u, v, _ in physical.graph.edges():
            if kinds.get(u) == "transit" and kinds.get(v) == "transit":
                low, high = transit_range
            else:
                low, high = stub_range
            self._capacity[_key(u, v)] = rng.uniform(low, high)
        self._bottleneck_cache: Dict[Tuple[int, int], float] = {}

    def link_capacity(self, u: int, v: int) -> float:
        """Capacity of the physical link {u, v}."""
        try:
            return self._capacity[_key(u, v)]
        except KeyError:
            raise RoutingError(f"no physical link between {u!r} and {v!r}") from None

    def overlay_bandwidth(self, u: ProxyId, v: ProxyId) -> float:
        """Bottleneck bandwidth of the overlay link (u, v).

        The minimum link capacity along the shortest-delay physical route —
        what an overlay pair would observe end to end.
        """
        if u == v:
            return float("inf")
        key = _key(u, v)
        cached = self._bottleneck_cache.get(key)
        if cached is None:
            route = self.physical.route(u, v)
            cached = min(
                self.link_capacity(a, b) for a, b in zip(route, route[1:])
            )
            self._bottleneck_cache[key] = cached
        return cached

    def path_bandwidth(self, proxies: Sequence[ProxyId]) -> float:
        """Bottleneck bandwidth along a multi-hop overlay path."""
        if len(proxies) < 2:
            return float("inf")
        return min(
            self.overlay_bandwidth(a, b) for a, b in zip(proxies, proxies[1:])
        )


def _key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class BandwidthAwareProvider(DistanceProvider):
    """Wraps a delay provider, masking links below *min_bandwidth* to inf."""

    def __init__(
        self,
        base: DistanceProvider,
        model: BandwidthModel,
        min_bandwidth: float,
    ) -> None:
        if min_bandwidth < 0:
            raise RoutingError("min_bandwidth must be >= 0")
        self.base = base
        self.model = model
        self.min_bandwidth = min_bandwidth

    def pair(self, u: ProxyId, v: ProxyId) -> float:
        if u != v and self.model.overlay_bandwidth(u, v) < self.min_bandwidth:
            return float("inf")
        return self.base.pair(u, v)

    def block(self, us: Sequence[ProxyId], vs: Sequence[ProxyId]) -> np.ndarray:
        block = np.array(self.base.block(us, vs), dtype=float, copy=True)
        for i, u in enumerate(us):
            for j, v in enumerate(vs):
                if u != v and self.model.overlay_bandwidth(u, v) < self.min_bandwidth:
                    block[i, j] = np.inf
        return block


def qos_flat_router(
    overlay: OverlayNetwork,
    model: BandwidthModel,
    min_bandwidth: float,
    **kwargs,
) -> FlatRouter:
    """Flat widest-shortest router: shortest delay among feasible links."""
    if overlay.space is None:
        raise RoutingError("overlay has no coordinate space attached")
    provider = BandwidthAwareProvider(
        CoordinateProvider(overlay.space), model, min_bandwidth
    )
    kwargs.setdefault("name", f"qos-flat(bw>={min_bandwidth})")
    return FlatRouter(overlay, provider, **kwargs)


class _BandwidthFilteredHFC:
    """HFC view whose infeasible external links report infinite length."""

    def __init__(
        self, hfc: HFCTopology, model: BandwidthModel, min_bandwidth: float
    ) -> None:
        self._hfc = hfc
        self._model = model
        self._min_bandwidth = min_bandwidth

    def external_estimate(self, i: int, j: int) -> float:
        u = self._hfc.border(i, j)
        v = self._hfc.border(j, i)
        if self._model.overlay_bandwidth(u, v) < self._min_bandwidth:
            return float("inf")
        return self._hfc.external_estimate(i, j)

    def __getattr__(self, name: str):
        return getattr(self._hfc, name)


class QoSHierarchicalRouter(HierarchicalRouter):
    """Hierarchical routing under a minimum-bandwidth requirement.

    Cluster-level transitions whose border link cannot carry the requirement
    are pruned (infinite external length); intra-cluster child routing masks
    infeasible member links the same way. Raises
    :class:`~repro.util.errors.NoFeasiblePathError` when no
    bandwidth-feasible service path exists.
    """

    def __init__(
        self,
        hfc: HFCTopology,
        model: BandwidthModel,
        min_bandwidth: float,
        **kwargs,
    ) -> None:
        super().__init__(_BandwidthFilteredHFC(hfc, model, min_bandwidth), **kwargs)  # type: ignore[arg-type]
        self.model = model
        self.min_bandwidth = min_bandwidth
        self._provider = BandwidthAwareProvider(
            CoordinateProvider(hfc.space), model, min_bandwidth
        )

    def solve_child(self, request, child):
        """Intra-cluster solving plus a bandwidth check on relay-only hops.

        Children with services route through the bandwidth-masked provider
        already; a child with *no* services is a direct border-to-border
        relay that the provider never sees, so its single hop is verified
        here. Infeasible means the whole CSP choice was infeasible.
        """
        from repro.util.errors import NoFeasiblePathError

        path = super().solve_child(request, child)
        proxies = path.proxies()
        for u, v in zip(proxies, proxies[1:]):
            if self.model.overlay_bandwidth(u, v) < self.min_bandwidth:
                raise NoFeasiblePathError(
                    f"intra-cluster link ({u!r}, {v!r}) cannot carry "
                    f"{self.min_bandwidth} (bottleneck "
                    f"{self.model.overlay_bandwidth(u, v):.1f})"
                )
        return path


def cluster_pair_bandwidth(
    hfc: HFCTopology, model: BandwidthModel
) -> Dict[Tuple[int, int], float]:
    """The border-link bandwidth per cluster pair — the natural aggregate a
    Section-4 protocol would advertise for inter-cluster QoS state."""
    result: Dict[Tuple[int, int], float] = {}
    for (i, j), u in hfc.borders.items():
        if i < j:
            v = hfc.borders[(j, i)]
            result[(i, j)] = model.overlay_bandwidth(u, v)
    return result


def intra_cluster_bandwidth_stats(
    hfc: HFCTopology, model: BandwidthModel, cluster_id: int
) -> Dict[str, float]:
    """min/mean/max bottleneck bandwidth over a cluster's internal links."""
    members = hfc.members(cluster_id)
    values = [
        model.overlay_bandwidth(u, v)
        for a, u in enumerate(members)
        for v in members[a + 1 :]
    ]
    if not values:
        return {"min": float("inf"), "mean": float("inf"), "max": float("inf")}
    return {
        "min": float(min(values)),
        "mean": float(np.mean(values)),
        "max": float(max(values)),
    }
