"""Service multicast trees over the HFC overlay.

The paper's reference list contains the authors' companion work on service
multicast ("mc-SPF" [3], "On Construction of Service Multicast Trees" [6]):
one source streams to *many* clients, each needing the same composed
service chain. Replicating the full unicast service path per destination
wastes both processing (services run once per destination) and bandwidth;
a **service multicast tree** applies the service chain once and then
replicates the processed stream along a distribution tree.

Construction here follows the natural two-stage shape on top of the
hierarchical framework:

1. **chain selection** — for each candidate anchor destination, resolve the
   service chain hierarchically (Section 5 machinery) and price
   chain + distribution; keep the cheapest combination;
2. **distribution tree** — a Euclidean MST over the chain's tail proxy and
   all destinations (coordinate estimates — the information proxies
   actually have), with every tree edge expanded through the HFC topology
   (direct inside a cluster, border relays across clusters).

The result answers every destination with a valid service path (the shared
chain plus its tree branch), and the bench compares total tree cost against
the per-destination unicast baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.mst import euclidean_mst
from repro.overlay.network import OverlayNetwork, ProxyId
from repro.routing.hierarchical import HierarchicalRouter
from repro.routing.path import Hop, ServicePath
from repro.services.graph import ServiceGraph
from repro.services.request import ServiceRequest
from repro.util.errors import RoutingError


@dataclass(frozen=True)
class MulticastRequest:
    """One source, one service graph, many destinations."""

    source_proxy: ProxyId
    service_graph: ServiceGraph
    destinations: Tuple[ProxyId, ...]

    def __post_init__(self) -> None:
        if not self.destinations:
            raise RoutingError("multicast request needs at least one destination")
        if len(set(self.destinations)) != len(self.destinations):
            raise RoutingError("duplicate destinations in multicast request")
        if self.source_proxy in self.destinations:
            raise RoutingError("source cannot also be a destination")


@dataclass
class ServiceTree:
    """A service multicast tree.

    Attributes:
        chain: the shared service path from the source through every
            service slot (ends at the tail proxy, before distribution).
        tree_edges: distribution edges as concrete proxy chains (each the
            HFC expansion of one logical tree link), rooted at the chain
            tail.
        branch_of: destination -> its distribution route from the chain
            tail (list of proxies, tail first).
    """

    chain: ServicePath
    tree_edges: List[List[ProxyId]]
    branch_of: Dict[ProxyId, List[ProxyId]]

    @property
    def tail(self) -> ProxyId:
        """The proxy holding the fully processed stream."""
        return self.chain.hops[-1].proxy

    def path_to(self, destination: ProxyId) -> ServicePath:
        """The complete service path experienced by *destination*."""
        try:
            branch = self.branch_of[destination]
        except KeyError:
            raise RoutingError(f"{destination!r} is not a tree destination") from None
        hops: List[Hop] = list(self.chain.hops)
        for proxy in branch[1:]:
            hops.append(Hop(proxy=proxy))
        merged: List[Hop] = []
        for hop in hops:
            if merged and merged[-1].proxy == hop.proxy and hop.service is None:
                continue
            merged.append(hop)
        return ServicePath(hops=tuple(merged))

    def total_cost(self, overlay: OverlayNetwork) -> float:
        """True-delay cost of the whole tree: chain + every tree edge once.

        This is the bandwidth-style cost a multicast tree saves versus
        unicast: shared links (and the service chain) are paid once.
        """
        cost = self.chain.true_delay(overlay)
        for edge in self.tree_edges:
            cost += sum(
                overlay.true_delay(u, v) for u, v in zip(edge, edge[1:])
            )
        return cost

    def destination_latency(self, overlay: OverlayNetwork, destination: ProxyId) -> float:
        """True delay from source to *destination* through the tree."""
        return self.path_to(destination).true_delay(overlay)


def build_service_tree(
    router: HierarchicalRouter,
    request: MulticastRequest,
    *,
    anchor_candidates: Optional[int] = 4,
) -> ServiceTree:
    """Construct a service multicast tree for *request*.

    Args:
        router: a hierarchical router over the target HFC topology.
        request: the multicast request.
        anchor_candidates: how many destinations to try as the chain's
            anchor (None = all). Anchors are tried nearest-first in
            coordinate space; more candidates trade construction time for
            tree quality.
    """
    hfc = router.hfc
    space = hfc.space
    destinations = list(request.destinations)
    order = sorted(
        destinations, key=lambda d: space.distance(request.source_proxy, d)
    )
    if anchor_candidates is not None:
        order = order[:anchor_candidates]

    best: Optional[Tuple[float, ServiceTree]] = None
    for anchor in order:
        unicast = ServiceRequest(
            request.source_proxy, request.service_graph, anchor
        )
        chain_path = router.route(unicast)
        chain = _strip_trailing_relays(chain_path)
        tree = _distribution_tree(hfc, chain, destinations)
        estimate = _estimated_tree_cost(space, chain, tree)
        if best is None or estimate < best[0]:
            best = (estimate, tree)
    assert best is not None
    return best[1]


def _strip_trailing_relays(path: ServicePath) -> ServicePath:
    """Drop pure-relay hops after the last service hop.

    The chain only needs to reach the proxy applying the final service; the
    distribution tree takes over from there.
    """
    hops = list(path.hops)
    last_service = max(
        (i for i, h in enumerate(hops) if h.service is not None),
        default=len(hops) - 1,
    )
    return ServicePath(hops=tuple(hops[: last_service + 1]))


def _distribution_tree(
    hfc, chain: ServicePath, destinations: Sequence[ProxyId]
) -> ServiceTree:
    """MST distribution from the chain tail to every destination."""
    tail = chain.hops[-1].proxy
    nodes: List[ProxyId] = [tail] + [d for d in destinations if d != tail]
    points = hfc.space.array(nodes)
    mst = euclidean_mst(points)

    adjacency: Dict[int, List[int]] = {i: [] for i in range(len(nodes))}
    for i, j, _ in mst:
        adjacency[i].append(j)
        adjacency[j].append(i)

    # orient edges away from the tail (index 0) and expand through HFC
    parent: Dict[int, int] = {0: 0}
    order: List[int] = [0]
    stack = [0]
    seen: Set[int] = {0}
    while stack:
        node = stack.pop()
        for nxt in adjacency[node]:
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = node
                order.append(nxt)
                stack.append(nxt)

    tree_edges: List[List[ProxyId]] = []
    route_to: Dict[int, List[ProxyId]] = {0: [tail]}
    for idx in order[1:]:
        u = nodes[parent[idx]]
        v = nodes[idx]
        expansion = hfc.expand_hop(u, v)
        tree_edges.append(expansion)
        route_to[idx] = route_to[parent[idx]] + expansion[1:]

    branch_of = {
        nodes[idx]: route for idx, route in route_to.items() if idx != 0
    }
    branch_of[tail] = [tail]
    return ServiceTree(
        chain=chain,
        tree_edges=tree_edges,
        branch_of={d: branch_of[d] for d in destinations},
    )


def _estimated_tree_cost(space, chain: ServicePath, tree: ServiceTree) -> float:
    """Coordinate-space cost used to compare anchor candidates."""
    proxies = chain.proxies()
    cost = sum(space.distance(u, v) for u, v in zip(proxies, proxies[1:]))
    for edge in tree.tree_edges:
        cost += sum(space.distance(u, v) for u, v in zip(edge, edge[1:]))
    return cost


def unicast_baseline_cost(
    router: HierarchicalRouter,
    request: MulticastRequest,
    overlay: OverlayNetwork,
) -> float:
    """Total true-delay cost of serving every destination with its own
    unicast service path — the no-multicast baseline."""
    total = 0.0
    for destination in request.destinations:
        unicast = ServiceRequest(
            request.source_proxy, request.service_graph, destination
        )
        total += router.route(unicast).true_delay(overlay)
    return total
