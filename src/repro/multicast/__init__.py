"""Service multicast trees (the authors' companion line of work, refs [3]/[6])."""

from repro.multicast.tree import (
    MulticastRequest,
    ServiceTree,
    build_service_tree,
    unicast_baseline_cost,
)

__all__ = [
    "MulticastRequest",
    "ServiceTree",
    "build_service_tree",
    "unicast_baseline_cost",
]
