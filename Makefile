# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-full bench-query traffic examples clean lint bench-smoke fault-matrix ci coverage

# Editable install with the consolidated dev dependency list — the same
# `[project.optional-dependencies] dev` extra every CI job installs from.
install:
	$(PYTHON) -m pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Regenerate the batched-query bench (BENCH_query.json) at the active scale.
bench-query:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_query.py --benchmark-only -q

# Regenerate the sustained-traffic bench (BENCH_traffic.json) at the active
# scale: steady state, rate-sweep saturation, and load-under-faults.
traffic:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_traffic.py --benchmark-only -q

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

# Lint/typecheck exactly as the CI lint job does; skipped with a notice when
# the tools are not installed (they are not part of the runtime deps).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro benchmarks scripts tests; \
	else echo "ruff not installed; skipping (CI runs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else echo "mypy not installed; skipping (CI runs it)"; fi

# The CI bench-smoke job: regenerate the small-scale construction, churn and
# query benches and gate their speedup ratios against the committed baselines.
bench-smoke:
	cp BENCH_construction.json /tmp/bench_baseline.json
	cp BENCH_churn.json /tmp/churn_baseline.json
	cp BENCH_query.json /tmp/query_baseline.json
	cp BENCH_resilience.json /tmp/resilience_baseline.json
	cp BENCH_traffic.json /tmp/traffic_baseline.json
	cp BENCH_snapshot.json /tmp/snapshot_baseline.json
	cp BENCH_hierarchy.json /tmp/hierarchy_baseline.json
	cp BENCH_shard.json /tmp/shard_baseline.json
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_construction.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_churn.py::test_incremental_churn_speedup --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_query.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_resilience.py::test_fault_matrix_recovery --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_traffic.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_snapshot.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_multilevel.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_shard.py --benchmark-only -q
	$(PYTHON) scripts/check_bench_regression.py /tmp/bench_baseline.json BENCH_construction.json --tolerance 0.25
	$(PYTHON) scripts/check_bench_regression.py /tmp/churn_baseline.json BENCH_churn.json --tolerance 0.25 --metric maintenance --metric state_bytes
	$(PYTHON) scripts/check_bench_regression.py /tmp/query_baseline.json BENCH_query.json --tolerance 0.25 --metric batch_throughput --metric single_query
	$(PYTHON) scripts/check_bench_regression.py /tmp/resilience_baseline.json BENCH_resilience.json --tolerance 0.25 --metric delivery_recovery --metric reconverge_margin
	$(PYTHON) scripts/check_bench_regression.py /tmp/traffic_baseline.json BENCH_traffic.json --tolerance 0.25 --metric steady_throughput --metric p95_latency
	$(PYTHON) scripts/check_bench_regression.py /tmp/snapshot_baseline.json BENCH_snapshot.json --tolerance 0.25 --metric warm_start
	$(PYTHON) scripts/check_bench_regression.py /tmp/hierarchy_baseline.json BENCH_hierarchy.json --tolerance 0.25 --metric state_l3 --metric delay_l3
	$(PYTHON) scripts/check_bench_regression.py /tmp/shard_baseline.json BENCH_shard.json --tolerance 0.25 --metric completed_ratio --metric locality

# Tier-1 suite under coverage, enforcing the same floor as the CI tests job
# (py3.12 leg); writes the HTML report to htmlcov/. Skipped with a notice
# when pytest-cov is not installed (it is a dev-extra tool, not a runtime dep).
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m pytest -x -q \
			--cov=repro --cov-report=term-missing:skip-covered \
			--cov-report=html --cov-fail-under=70; \
	else echo "pytest-cov not installed; skipping (CI runs it)"; fi

# The CI fault-matrix smoke job: three seeded fault plans (loss burst,
# partition heal, crash/restart) at small n under the convergence auditor.
fault-matrix:
	PYTHONPATH=src $(PYTHON) scripts/run_fault_matrix.py --audit-dir benchmarks/out

# Mirror the full CI workflow locally: tier-1 tests, lint, fault matrix,
# bench smoke + gate.
ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) lint
	$(MAKE) fault-matrix
	$(MAKE) bench-smoke

clean:
	rm -rf build *.egg-info benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
