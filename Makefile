# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build *.egg-info benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
